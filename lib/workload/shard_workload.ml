type result = {
  outcome : Amac.Engine.outcome;
  handle : Shard.handle;
  violations : Smr_checker.shard_violation list;
  issued : int;
  submitted : int;
  committed : int;
  batches : int;
  latencies : int array;
  group_commits : int array;
  last_commit : int;
}

let latency result ~q =
  if q <= 0.0 || q > 1.0 then
    invalid_arg "Shard_workload.latency: q outside (0, 1]";
  let len = Array.length result.latencies in
  if len = 0 then None
  else
    let rank = int_of_float (ceil (q *. float_of_int len)) in
    Some result.latencies.(max 0 (min (len - 1) (rank - 1)))

let run ?(window = 4) ?(batch = 4) ?(mean_gap = 2) ?(burst = 1)
    ?(affinity = false) ?(key_space = 256) ?theta ?(faults = [])
    ?(crashes = []) ?(max_time = 400_000) ?(record_trace = false) ?obs
    ?members_of ~topology ~scheduler ~seed ~cmds ~groups () =
  if cmds < 0 then invalid_arg "Shard_workload.run: cmds < 0";
  if mean_gap < 1 then invalid_arg "Shard_workload.run: mean_gap < 1";
  if burst < 1 then invalid_arg "Shard_workload.run: burst < 1";
  if key_space < 1 then invalid_arg "Shard_workload.run: key_space < 1";
  let n = Amac.Topology.size topology in
  let rng = Amac.Rng.create seed in
  let zipf = Zipf.make ?theta ~support:key_space ~seed:(seed lxor 0x5bd1e995) () in
  let clock = ref 0 in
  let submit_time : (int, int) Hashtbl.t = Hashtbl.create ((2 * cmds) + 16) in
  let commit_time : (int, int) Hashtbl.t = Hashtbl.create ((2 * cmds) + 16) in
  let last_commit = ref 0 in
  let on_apply ~node:_ ~group:_ ~cmd =
    if not (Hashtbl.mem commit_time cmd) then begin
      Hashtbl.replace commit_time cmd !clock;
      if !clock > !last_commit then last_commit := !clock
    end
  in
  let algorithm, h =
    Shard.make ~window ~batch ~on_apply ?members_of ~clock ~groups ()
  in
  (* The client schedule: a Poisson arrival process (inverse-CDF
     exponential gaps) of Zipf-keyed commands, each landing at a
     uniformly drawn replica. Keys route commands to groups up front. *)
  let issued = ref 0 in
  let last_t = ref 0 in
  (* [burst] commands share each arrival (same node, same tick): offered
     load is burst/mean_gap commands per tick, which is how a bench
     pushes past one group's drain capacity while gaps stay integral. *)
  let home =
    (* With [affinity] each command lands at a replica of its owning
       group — the client knows the shard map. Without it (default) the
       whole burst lands at one uniform node; per-(node, group) staging
       buffers then fill [groups] times slower and the run degenerates
       into waiting for the end-of-run flush markers. *)
    let members g =
      match members_of with
      | None -> Array.init n Fun.id
      | Some f -> Array.of_list (f g)
    in
    Array.init groups members
  in
  let arrivals = (cmds + burst - 1) / burst in
  let injections =
    List.concat_map
      (fun _ ->
        let u = Amac.Rng.float rng 1.0 in
        let gap =
          max 1 (int_of_float (-.float_of_int mean_gap *. log (1.0 -. u)))
        in
        last_t := !last_t + gap;
        let node = Amac.Rng.int rng n in
        let t = !last_t in
        List.filter_map
          (fun _ ->
            if !issued >= cmds then None
            else begin
              let key = Zipf.next zipf in
              incr issued;
              let cmd = !issued in
              let g = Shard.route h ~key ~cmd in
              let node =
                if affinity then
                  home.(g).(Amac.Rng.int rng (Array.length home.(g)))
                else node
              in
              Some (node, t, cmd)
            end)
          (List.init burst (fun i -> i)))
      (List.init arrivals (fun i -> i))
  in
  (* Trailing sub-batch commands sit in per-(node, group) buffers;
     flush markers at every (node, group) after the last arrival force
     them into the logs. A marker landing on a crashed node is lost,
     like the staged commands it would have flushed. *)
  let flush_at = !last_t + (2 * mean_gap) + 1 in
  let flushes =
    List.concat_map
      (fun node ->
        List.init groups (fun g -> (node, flush_at, Shard.flush_cmd ~group:g)))
      (List.init n (fun i -> i))
  in
  let on_inject ~now ~payload ctx st =
    if payload land (1 lsl 43) = 0 && not (Hashtbl.mem submit_time payload)
    then Hashtbl.replace submit_time payload now;
    Shard.injector h ~now ~payload ctx st
  in
  let compiled = Fault.compile ~n faults in
  let crashes = crashes @ compiled.Fault.crashes in
  let inputs = Array.make n 0 in
  let outcome =
    Amac.Engine.run algorithm ~topology ~scheduler ~inputs ~give_n:true
      ~crashes ~recoveries:compiled.Fault.recoveries ?drop:compiled.Fault.drop
      ?stutter:compiled.Fault.stutter
      ~injections:(injections @ flushes)
      ~on_inject ~clock ~max_time ~stop_when_all_decided:false ~record_trace
      ~pp_msg:Shard.pp_msg ?obs
  in
  let violations = Shard.check h in
  let latencies =
    Hashtbl.fold
      (fun cmd t acc ->
        match Hashtbl.find_opt submit_time cmd with
        | Some s when t >= s -> (t - s) :: acc
        | _ -> acc)
      commit_time []
    |> List.sort compare |> Array.of_list
  in
  let group_commits =
    Array.init groups (fun g ->
        let ih = Shard.inner h g in
        List.fold_left
          (fun acc node -> max acc (Smr.commit_index ih node))
          0 (Smr.nodes ih))
  in
  let committed = Shard.committed h in
  (match obs with
  | None -> ()
  | Some reg ->
      let labels = [ ("algorithm", algorithm.Amac.Algorithm.name) ] in
      Obs.Metrics.add
        (Obs.Metrics.counter reg ~labels "shard_submitted_total")
        (Shard.submitted h);
      Obs.Metrics.add
        (Obs.Metrics.counter reg ~labels "shard_committed_total")
        committed;
      Obs.Metrics.add
        (Obs.Metrics.counter reg ~labels "shard_batches_total")
        (Shard.batches h);
      let hist =
        Obs.Metrics.histogram reg ~labels ~buckets:Workload.latency_buckets
          "shard_commit_latency_ticks"
      in
      Array.iter (fun l -> Obs.Metrics.observe hist (float_of_int l)) latencies;
      Array.iteri
        (fun g c ->
          Obs.Metrics.set
            (Obs.Metrics.gauge reg
               ~labels:(("group", string_of_int g) :: labels)
               "shard_group_commit_index")
            (float_of_int c))
        group_commits);
  {
    outcome;
    handle = h;
    violations;
    issued = !issued;
    submitted = Shard.submitted h;
    committed;
    batches = Shard.batches h;
    latencies;
    group_commits;
    last_commit = !last_commit;
  }
