(** Deterministic Zipf-distributed key sampler.

    Skewed key popularity is what makes sharding interesting: under a
    uniform keyspace every group sees the same load, under Zipf a few
    hot keys concentrate traffic on their owning groups — the sharded
    benchmarks (B13) and fuzz modes sample keys from this distribution
    to exercise the imbalanced case.

    P(k) is proportional to 1/k^theta over k in [1, support], sampled
    by inverse transform over a precomputed CDF (O(log support) per
    draw). Fully deterministic: the same [seed] yields the same key
    stream, draw for draw — the property [test_shard.ml] pins down. *)

type t

(** [make ~support ~seed ()] — [theta] defaults to 0.99 (the YCSB
    convention; [theta = 0] degenerates to uniform).
    @raise Invalid_argument if [support < 1] or [theta < 0]. *)
val make : ?theta:float -> support:int -> seed:int -> unit -> t

(** The next key, in [1, support]. *)
val next : t -> int
