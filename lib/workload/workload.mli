(** Deterministic client-traffic generator for the {!Smr} replicated log.

    A workload turns one seed into a full client schedule, drives it through
    an {!Amac.Engine} run of the SMR algorithm, and measures per-command
    commit latency against the simulation clock. Two shapes:

    - {e open loop}: [cmds] commands arrive at exponentially distributed
      gaps (mean [mean_gap] ticks, inverse-CDF over the seeded generator —
      a Poisson process in discrete time), each at a uniformly drawn
      replica, regardless of how the log keeps up. Arrivals are engine
      {e injections}; one landing on a crashed replica is lost, exactly
      like a client talking to a dead server.
    - {e closed loop}: [clients_per_node] clients per replica each keep
      exactly one command outstanding — the next submit happens inside the
      {!Smr} apply callback of the previous one, at the replica the client
      is attached to, until [cmds] commands have been issued in total.

    Latency for a command is first-apply time (at {e any} replica) minus
    submit time, both read off the engine's clock. Everything — gaps,
    placement, the scheduler's choices — derives from explicit seeds, so a
    run is replayable bit-for-bit. *)

type mode =
  | Open_loop of { mean_gap : int }  (** mean inter-arrival gap, ticks *)
  | Closed_loop of { clients_per_node : int }

type result = {
  outcome : Amac.Engine.outcome;
  handle : Smr.handle;  (** for further inspection / checking *)
  violations : Smr_checker.violation list;  (** [] = safety held *)
  issued : int;  (** commands the generator produced *)
  submitted : int;  (** commands that reached a live replica *)
  committed : int;  (** distinct commands applied at >= 1 replica *)
  commit_index_min : int;
  commit_index_max : int;
  latencies : int array;  (** sorted commit latencies, one per committed *)
  queue_latencies : int array;
      (** sorted queueing phases (submit to the command's first [Propose]
          anywhere: forwarding, leader election, pipeline-window waits),
          one per committed command *)
  replicate_latencies : int array;
      (** sorted replication phases (first [Propose] to first apply: the
          Paxos round trips), one per committed command *)
  epoch_min : int;  (** fewest completed reconfigurations at any replica *)
  epoch_max : int;
  suspicions : int;  (** leader suspicions raised, summed over replicas *)
  snapshots_taken : int;
  snapshots_installed : int;
}

(** [latency result ~q] — the [q]-quantile (nearest-rank, [0 < q <= 1]) of
    commit latency, or [None] when nothing committed. *)
val latency : result -> q:float -> int option

(** Histogram buckets sized for tick-scale commit latencies (shared with
    the sharded driver, {!Shard_workload}). *)
val latency_buckets : float list

(** [run ~topology ~scheduler ~seed ~cmds ~mode ()] builds the SMR
    algorithm, generates the client schedule from [seed], and drains the
    engine ([stop_when_all_decided:false]).

    @param window SMR pipelining window (default 4).
    @param faults a declarative {!Fault.plan}, compiled as in
      {!Consensus.Runner.run}; its crash/recovery schedule merges with
      [?crashes].
    @param obs a metrics registry: the engine self-instruments, the fault
      plan is mirrored ({!Fault.record}), and the workload adds
      [smr_submitted_total] / [smr_committed_total] counters, an
      [smr_commit_latency_ticks] histogram plus its
      [smr_queue_latency_ticks] / [smr_replicate_latency_ticks] breakdown
      (split at each command's first [Propose]), lifecycle counters
      ([smr_fd_suspicions_total], [smr_snapshots_taken_total],
      [smr_snapshots_installed_total], [smr_epoch_max]) and per-node
      detector gauges.
    @param members initial voting configuration (see {!Smr.make}).
    @param reconfigs scheduled membership changes, one [(node, at, members)]
      triple each: the joint command is injected at [node] at time [at] and
      decided through the log (joint consensus). An injection landing on a
      crashed replica is lost, like any client request.
    @param compact_every log compaction watermark interval (see
      {!Smr.make}; default: never compact).
    @param patience / backoff / repair_retries — ◇P detector and repair
      tuning, passed through to {!Smr.make}.
    @param on_suspect called whenever a replica's detector suspects its
      current leader, with the engine clock — B11 measures detection
      latency with it.
    @param provenance a caller-owned causal DAG the engine appends to (see
      {!Amac.Engine.run}); SMR runs produce no engine-level decides, so the
      DAG holds boot/inject/broadcast/deliver/ack vertices — the raw
      material for energy accounting and [amac_sim profile --smr].
    @raise Invalid_argument on [cmds < 0], [Open_loop] with [mean_gap < 1],
      or [Closed_loop] with [clients_per_node < 1]. *)
val run :
  ?window:int ->
  ?faults:Fault.plan ->
  ?crashes:(int * int) list ->
  ?max_time:int ->
  ?record_trace:bool ->
  ?obs:Obs.Metrics.registry ->
  ?provenance:Obs.Provenance.t ->
  ?members:int list ->
  ?reconfigs:(int * int * int list) list ->
  ?compact_every:int ->
  ?patience:int ->
  ?backoff:int ->
  ?repair_retries:int ->
  ?on_suspect:(now:int -> node:int -> suspect:int -> unit) ->
  topology:Amac.Topology.t ->
  scheduler:Amac.Scheduler.t ->
  seed:int ->
  cmds:int ->
  mode:mode ->
  unit ->
  result
