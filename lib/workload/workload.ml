type mode =
  | Open_loop of { mean_gap : int }
  | Closed_loop of { clients_per_node : int }

type result = {
  outcome : Amac.Engine.outcome;
  handle : Smr.handle;
  violations : Smr_checker.violation list;
  issued : int;
  submitted : int;
  committed : int;
  commit_index_min : int;
  commit_index_max : int;
  latencies : int array;
  queue_latencies : int array;
  replicate_latencies : int array;
  epoch_min : int;
  epoch_max : int;
  suspicions : int;
  snapshots_taken : int;
  snapshots_installed : int;
}

let latency result ~q =
  if q <= 0.0 || q > 1.0 then invalid_arg "Workload.latency: q outside (0, 1]";
  let len = Array.length result.latencies in
  if len = 0 then None
  else
    let rank = int_of_float (ceil (q *. float_of_int len)) in
    Some result.latencies.(max 0 (min (len - 1) (rank - 1)))

(* Latencies are simulation ticks, typically a few F_ack windows up to a
   few retry epochs; the default seconds-scale buckets would lump
   everything into +Inf. *)
let latency_buckets =
  [ 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 2000.; 5000.; 20_000. ]

let run ?(window = 4) ?(faults = []) ?(crashes = []) ?(max_time = 400_000)
    ?(record_trace = false) ?obs ?provenance ?members ?(reconfigs = [])
    ?compact_every ?patience ?backoff ?repair_retries ?on_suspect ~topology
    ~scheduler ~seed ~cmds ~mode () =
  if cmds < 0 then invalid_arg "Workload.run: cmds < 0";
  let n = Amac.Topology.size topology in
  let rng = Amac.Rng.create seed in
  let clock = ref 0 in
  let submit_time : (int, int) Hashtbl.t = Hashtbl.create ((2 * cmds) + 16) in
  let commit_time : (int, int) Hashtbl.t = Hashtbl.create ((2 * cmds) + 16) in
  let origin : (int, int) Hashtbl.t = Hashtbl.create ((2 * cmds) + 16) in
  let issued = ref 0 in
  let next_cmd () =
    incr issued;
    !issued
  in
  (* The apply callback needs the handle (to resubmit in closed loop), but
     the handle only exists once [Smr.make] returns — hence the knot. *)
  let handle_ref = ref None in
  let on_apply ~node ~index:_ ~cmd =
    if not (Hashtbl.mem commit_time cmd) then
      Hashtbl.replace commit_time cmd !clock;
    match mode with
    | Open_loop _ -> ()
    | Closed_loop _ -> (
        (* The client attached to [cmd]'s origin replica sees completion on
           that replica's own apply and immediately submits its next
           command. Apply is exactly-once per node, so this fires once. *)
        match (Hashtbl.find_opt origin cmd, !handle_ref) with
        | Some origin_node, Some h when origin_node = node && !issued < cmds ->
            let c = next_cmd () in
            Hashtbl.replace origin c node;
            Hashtbl.replace submit_time c !clock;
            Smr.submit h ~node ~cmd:c
        | _ -> ())
  in
  let on_suspect =
    Option.map
      (fun f ~node ~suspect -> f ~now:!clock ~node ~suspect)
      on_suspect
  in
  let algorithm, h =
    Smr.make ~window ~on_apply ?on_suspect ?members ?compact_every ?patience
      ?backoff ?repair_retries ~clock ()
  in
  handle_ref := Some h;
  (* Reconfigurations ride the injection stream like client commands: the
     joint command is registered on the handle up front (so the injector
     recognises it) and lands at its target replica at its scheduled time.
     One landing on a crashed replica is lost, like any client request. *)
  let reconfig_injections =
    List.map
      (fun (node, at, members) ->
        (node, at, Smr.reconfig_cmd h ~members))
      reconfigs
  in
  let injections =
    match mode with
    | Open_loop { mean_gap } ->
        if mean_gap < 1 then invalid_arg "Workload.run: mean_gap < 1";
        let t = ref 0 in
        List.init cmds (fun _ ->
            (* inverse-CDF exponential, floored at 1 tick *)
            let u = Amac.Rng.float rng 1.0 in
            let gap =
              max 1
                (int_of_float (-.float_of_int mean_gap *. log (1.0 -. u)))
            in
            t := !t + gap;
            let node = Amac.Rng.int rng n in
            let c = next_cmd () in
            Hashtbl.replace origin c node;
            (node, !t, c))
    | Closed_loop { clients_per_node } ->
        if clients_per_node < 1 then
          invalid_arg "Workload.run: clients_per_node < 1";
        let clients = min cmds (n * clients_per_node) in
        List.init clients (fun i ->
            let node = i mod n in
            let c = next_cmd () in
            Hashtbl.replace origin c node;
            (node, 0, c))
  in
  (* Submit time is the injection's *pop* time (= its scheduled time unless
     the run ends first); an injection lost to a crash never records one. *)
  let on_inject ~now ~payload ctx st =
    if not (Hashtbl.mem submit_time payload) then
      Hashtbl.replace submit_time payload now;
    Smr.injector h ~now ~payload ctx st
  in
  let compiled = Fault.compile ~n faults in
  let crashes = crashes @ compiled.Fault.crashes in
  (match obs with
  | Some reg when faults <> [] -> Fault.record ~obs:reg faults
  | _ -> ());
  let inputs = Array.make n 0 in
  let outcome =
    Amac.Engine.run algorithm ~topology ~scheduler ~inputs ~give_n:true
      ~crashes ~recoveries:compiled.Fault.recoveries ?drop:compiled.Fault.drop
      ?stutter:compiled.Fault.stutter
      ~injections:(injections @ reconfig_injections)
      ~on_inject ~clock ~max_time ~stop_when_all_decided:false ~record_trace
      ~pp_msg:Smr.pp_msg ?provenance ?obs
  in
  let violations = Smr_checker.check h in
  let nodes = Smr.nodes h in
  let commit_indices = List.map (Smr.commit_index h) nodes in
  let commit_index_min = List.fold_left min max_int commit_indices in
  let commit_index_min = if commit_index_min = max_int then 0 else commit_index_min in
  let commit_index_max = List.fold_left max 0 commit_indices in
  let latencies =
    Hashtbl.fold
      (fun cmd t acc ->
        match Hashtbl.find_opt submit_time cmd with
        | Some s when t >= s -> (t - s) :: acc
        | _ -> acc)
      commit_time []
    |> List.sort compare |> Array.of_list
  in
  (* Commit latency split at the command's first Propose: queueing
     (forwarding, leader election, window waits) vs replication (the
     Paxos round trips). Commands committed without an observed propose
     (none in practice) fall out of the breakdown only. *)
  let queue_latencies, replicate_latencies =
    Hashtbl.fold
      (fun cmd t acc ->
        match (Hashtbl.find_opt submit_time cmd, Smr.propose_time h ~cmd) with
        | Some s, Some p when t >= s && p >= s && t >= p ->
            let q, r = acc in
            ((p - s) :: q, (t - p) :: r)
        | _ -> acc)
      commit_time ([], [])
    |> fun (q, r) ->
    ( Array.of_list (List.sort compare q),
      Array.of_list (List.sort compare r) )
  in
  let committed = Hashtbl.length commit_time in
  let epochs = List.map (Smr.epoch h) nodes in
  let epoch_min = List.fold_left min max_int epochs in
  let epoch_min = if epoch_min = max_int then 0 else epoch_min in
  let epoch_max = List.fold_left max 0 epochs in
  let lifecycles = List.map (Smr.lifecycle h) nodes in
  let sum f = List.fold_left (fun acc l -> acc + f l) 0 lifecycles in
  let suspicions = sum (fun l -> l.Smr.fd_suspicions) in
  let snapshots_taken = sum (fun l -> l.Smr.snapshots_taken) in
  let snapshots_installed = sum (fun l -> l.Smr.snapshots_installed) in
  (match obs with
  | None -> ()
  | Some reg ->
      let labels = [ ("algorithm", algorithm.Amac.Algorithm.name) ] in
      Obs.Metrics.add
        (Obs.Metrics.counter reg ~labels "smr_submitted_total")
        (Smr.submitted_count h);
      Obs.Metrics.add
        (Obs.Metrics.counter reg ~labels "smr_committed_total")
        committed;
      let hist =
        Obs.Metrics.histogram reg ~labels ~buckets:latency_buckets
          "smr_commit_latency_ticks"
      in
      Array.iter (fun l -> Obs.Metrics.observe hist (float_of_int l)) latencies;
      let queue_hist =
        Obs.Metrics.histogram reg ~labels ~buckets:latency_buckets
          "smr_queue_latency_ticks"
      in
      Array.iter
        (fun l -> Obs.Metrics.observe queue_hist (float_of_int l))
        queue_latencies;
      let repl_hist =
        Obs.Metrics.histogram reg ~labels ~buckets:latency_buckets
          "smr_replicate_latency_ticks"
      in
      Array.iter
        (fun l -> Obs.Metrics.observe repl_hist (float_of_int l))
        replicate_latencies;
      Obs.Metrics.add
        (Obs.Metrics.counter reg ~labels "smr_fd_suspicions_total")
        suspicions;
      Obs.Metrics.add
        (Obs.Metrics.counter reg ~labels "smr_snapshots_taken_total")
        snapshots_taken;
      Obs.Metrics.add
        (Obs.Metrics.counter reg ~labels "smr_snapshots_installed_total")
        snapshots_installed;
      Obs.Metrics.set
        (Obs.Metrics.gauge reg ~labels "smr_epoch_max")
        (float_of_int epoch_max);
      List.iter
        (fun node ->
          let s = Smr.fd_stats h node in
          let node_labels = ("node", string_of_int node) :: labels in
          Obs.Metrics.set
            (Obs.Metrics.gauge reg ~labels:node_labels "fd_suspected_now")
            (float_of_int s.Fd.suspected_now);
          Obs.Metrics.set
            (Obs.Metrics.gauge reg ~labels:node_labels "fd_patience_acks")
            (float_of_int s.Fd.patience_now))
        nodes);
  {
    outcome;
    handle = h;
    violations;
    issued = !issued;
    submitted = Smr.submitted_count h;
    committed;
    commit_index_min;
    commit_index_max;
    latencies;
    queue_latencies;
    replicate_latencies;
    epoch_min;
    epoch_max;
    suspicions;
    snapshots_taken;
    snapshots_installed;
  }
