(** Production-lifecycle scenarios for the replicated log: canonical runs
    that exercise the ◇P detector, log compaction + snapshot transfer and
    joint-consensus reconfiguration {e under open-loop traffic}, each with
    a liveness verdict ("the system re-achieved steady state").

    Four scenarios, each fully determined by [(seed, fack)]:

    - {e rolling-restart}: all five replicas restart one at a time with
      compaction on; every restarter re-learns amnesiacally while the next
      outage is already scheduled.
    - {e scale-up}: membership 3 → 5 → 7 decided through the log while
      commands keep arriving at every node, learners included.
    - {e crash-reconfig}: scale 5 → 3 with the initial leader crashing as
      the transition opens — the auto-staged final command must close the
      transition without it.
    - {e snapshot-restart}: a replica stays down until the cluster's
      compaction floor has moved past everything it missed; only a
      snapshot transfer can catch it up.

    Safety is always asserted via the embedded {!Smr_checker} run
    ([result.violations]); [live] additionally demands full convergence
    (all commands committed, all commit indices equal) plus the scenario's
    own lifecycle clause (epochs reached, snapshots taken/installed).

    These runs double as test-matrix rows ([test_matrix.ml]), CLI
    subcommands ([amac_sim lifecycle]) and fuzz targets
    ([MCHECK_LIFECYCLE=1]). *)

type scenario =
  | Rolling_restart
  | Scale_up
  | Crash_reconfig
  | Snapshot_restart

val all : scenario list

val name : scenario -> string

val of_name : string -> scenario option

type outcome = {
  scenario : scenario;
  result : Workload.result;  (** the full run, for further inspection *)
  live : bool;  (** converged + scenario-specific lifecycle clause *)
  detail : string;  (** one-line human summary *)
}

(** [run scenario] — build the scenario's topology, fault plan, reconfig
    schedule and traffic from [seed]/[fack] and drive it through
    {!Workload.run}. Deterministic per [(seed, fack, max_time)]. *)
val run : ?seed:int -> ?fack:int -> ?max_time:int -> scenario -> outcome
