type t = {
  me : int;
  base_patience : int;
  backoff : int;
  patience_cap : int;
  mutable my_hb : int;
  hb_seen : (int, int) Hashtbl.t;  (* node -> largest heartbeat seen *)
  suspect_at : (int, int) Hashtbl.t;  (* peer -> hb_seen at suspicion time *)
  boosted : (int, int) Hashtbl.t;
      (* peer -> boosted patience; only populated when it differs from the
         base, so the default backoff=1 detector fingerprints exactly like
         the PR 2 field set it replaces *)
  mutable watched : int;
  mutable silence : int;
}

type verdict = Fresh | Fresh_cleared | Stale

type tick_verdict = Ok | Suspect

type stats = {
  suspected_now : int;
  watched : int;
  silence : int;
  patience_now : int;
}

let create ?(backoff = 1) ?patience_cap ~patience ~me () =
  if patience < 1 then invalid_arg "Fd.create: patience must be >= 1";
  if backoff < 1 then invalid_arg "Fd.create: backoff must be >= 1";
  let patience_cap =
    match patience_cap with
    | Some cap ->
        if cap < patience then
          invalid_arg "Fd.create: patience_cap below patience";
        cap
    | None -> 64 * patience
  in
  let t =
    {
      me;
      base_patience = patience;
      backoff;
      patience_cap;
      my_hb = 0;
      hb_seen = Hashtbl.create 8;
      suspect_at = Hashtbl.create 8;
      boosted = Hashtbl.create 8;
      watched = me;
      silence = 0;
    }
  in
  Hashtbl.replace t.hb_seen me 0;
  t

let beat t =
  t.my_hb <- t.my_hb + 1;
  Hashtbl.replace t.hb_seen t.me t.my_hb;
  t.my_hb

let hb t id = Option.value ~default:0 (Hashtbl.find_opt t.hb_seen id)

let suspected t id = Hashtbl.mem t.suspect_at id

let patience_of t peer =
  Option.value ~default:t.base_patience (Hashtbl.find_opt t.boosted peer)

let boost t peer =
  let p = patience_of t peer in
  let p' = min t.patience_cap (p * t.backoff) in
  if p' > p then Hashtbl.replace t.boosted peer p'

let observe t ~peer ~hb =
  let seen = Option.value ~default:(-1) (Hashtbl.find_opt t.hb_seen peer) in
  if hb > seen then begin
    Hashtbl.replace t.hb_seen peer hb;
    if peer = t.watched then t.silence <- 0;
    match Hashtbl.find_opt t.suspect_at peer with
    | Some at when hb > at ->
        (* The heartbeat advanced past the suspicion stamp: the peer was
           alive after all (e.g. a loss window ate its traffic). *)
        Hashtbl.remove t.suspect_at peer;
        boost t peer;
        Fresh_cleared
    | Some _ | None -> Fresh
  end
  else Stale

let watch (t : t) ~peer =
  t.watched <- peer;
  t.silence <- 0

let tick (t : t) ~peer =
  if peer <> t.watched then watch t ~peer;
  t.silence <- t.silence + 1;
  if t.silence > patience_of t peer && not (suspected t peer) then begin
    Hashtbl.replace t.suspect_at peer (hb t peer);
    Suspect
  end
  else Ok

let suspects t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.suspect_at []
  |> List.sort Int.compare

let candidate t ~base ~eligible =
  Hashtbl.fold
    (fun id _ best ->
      if eligible id && (not (suspected t id)) && id > best then id else best)
    t.hb_seen base

let stats t =
  {
    suspected_now = Hashtbl.length t.suspect_at;
    watched = t.watched;
    silence = t.silence;
    patience_now = patience_of t t.watched;
  }

let record ~obs ~labels t =
  let s = stats t in
  Obs.Metrics.set
    (Obs.Metrics.gauge obs ~labels "fd_suspected_now")
    (float_of_int s.suspected_now);
  Obs.Metrics.set
    (Obs.Metrics.gauge obs ~labels "fd_silence_acks")
    (float_of_int s.silence);
  Obs.Metrics.set
    (Obs.Metrics.gauge obs ~labels "fd_patience_acks")
    (float_of_int s.patience_now)

module F = Amac.Fingerprint

let fp_int_tbl tbl acc =
  let entries = Hashtbl.fold (fun k v l -> (k, v) :: l) tbl [] in
  let entries = List.sort compare entries in
  F.list (fun (k, v) acc -> acc |> F.int k |> F.int v) entries acc

let fingerprint t acc =
  acc |> F.int t.my_hb |> fp_int_tbl t.hb_seen |> fp_int_tbl t.suspect_at
  |> fp_int_tbl t.boosted |> F.int t.watched |> F.int t.silence
  |> F.int t.base_patience

let clone t =
  {
    t with
    hb_seen = Hashtbl.copy t.hb_seen;
    suspect_at = Hashtbl.copy t.suspect_at;
    boosted = Hashtbl.copy t.boosted;
  }
