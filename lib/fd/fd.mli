(** ◇P-style failure detector over the abstract MAC layer's ack clock.

    The model has no wall clock: a node observes time only through its own
    acknowledged broadcasts, so every timeout here is counted in {e own
    acks} (~F_ack ticks each). The detector is the factored-out form of the
    heartbeat/silence heuristic wPAXOS grew in PR 2, now a first-class,
    tunable module shared by [Consensus.Wpaxos] and [Smr]:

    - {e heartbeat emission}: the current leader advances its heartbeat
      counter once per ack ({!beat}); every broadcast piggybacks the
      freshest counter known for the leader, flooding it network-wide.
    - {e timeout tracking}: a follower watches one peer at a time (the
      leader) and counts its own acks since that peer's heartbeat last
      advanced ({!tick}); past the patience threshold the peer joins the
      [suspected] set, stamped with the heartbeat it stalled at.
    - {e eventual accuracy (the ◇P part)}: a heartbeat that later advances
      past the suspicion stamp proves the suspicion false — the peer is
      unsuspected and, with [backoff > 1], its patience is multiplied, so
      repeated false suspicions of a slow-but-alive peer die out. The
      default [backoff = 1] reproduces PR 2's fixed-patience behavior
      bit-for-bit.

    Completeness holds trivially (a crashed peer's heartbeat never
    advances); accuracy is eventual in the usual partial-synchrony sense
    (after loss windows close, a live leader's heartbeats land within any
    fixed patience often enough once backoff has grown it past the real
    delay).

    The detector is pure protocol state: no closures, no cumulative
    counters (callers that want suspicion totals count the {!tick} /
    {!observe} verdicts themselves), so states embedding a [t] stay
    Marshal-keyable and {!fingerprint} splits exactly the states the
    PR 2 field set split. *)

type t

(** What {!observe} learned from an incoming heartbeat. *)
type verdict =
  | Fresh  (** the heartbeat advanced *)
  | Fresh_cleared
      (** the heartbeat advanced past a suspicion stamp: false suspicion,
          peer unsuspected (and its patience boosted by [backoff]) *)
  | Stale  (** not news — at or below the largest heartbeat already seen *)

(** One ack of silence accounted to the watched peer. *)
type tick_verdict =
  | Ok
  | Suspect  (** silence just crossed the peer's patience: now suspected *)

(** Live-readable detector gauges (no cumulative counters — see above). *)
type stats = {
  suspected_now : int;  (** current size of the suspected set *)
  watched : int;  (** the peer whose silence is being timed *)
  silence : int;  (** own acks since the watched peer's heartbeat advanced *)
  patience_now : int;  (** current (possibly boosted) patience of watched *)
}

(** [create ~patience ~me ()] — a detector for node [me].

    @param patience own-ack silence budget before suspicion (wPAXOS default
      is [4n + 16]).
    @param backoff patience multiplier applied to a peer on every cleared
      (false) suspicion, capped at [patience_cap] (default [1] = fixed
      patience, the PR 2 behavior).
    @param patience_cap ceiling for boosted patience (default
      [64 * patience]).
    @raise Invalid_argument if [patience < 1] or [backoff < 1]. *)
val create : ?backoff:int -> ?patience_cap:int -> patience:int -> me:int -> unit -> t

(** Advance own heartbeat by one (leader, once per ack); returns the new
    value. *)
val beat : t -> int

(** Largest heartbeat seen for a node (own included); 0 if never heard. *)
val hb : t -> int -> int

(** Record a relayed heartbeat observation. *)
val observe : t -> peer:int -> hb:int -> verdict

(** Start timing [peer] (the new leader): resets the silence count. *)
val watch : t -> peer:int -> unit

(** One own ack of silence against [peer]. If [peer] differs from the
    currently watched peer, the watch moves (silence resets) first. *)
val tick : t -> peer:int -> tick_verdict

val suspected : t -> int -> bool

(** Currently suspected peers, sorted. *)
val suspects : t -> int list

(** Best (largest-id) unsuspected candidate among [base] and every peer a
    heartbeat was seen from, filtered by [eligible]. Returns [base] when no
    heard-from peer qualifies — pass a negative [base] to detect "no
    eligible candidate at all". *)
val candidate : t -> base:int -> eligible:(int -> bool) -> int

val stats : t -> stats

(** Mirror the current gauges into a metrics registry
    ([fd_suspected_now], [fd_silence_acks], [fd_patience_acks], labelled
    as given). *)
val record : obs:Obs.Metrics.registry -> labels:(string * string) list -> t -> unit

(** Fingerprint/clone hooks, for embedding in an algorithm state's own
    [Algorithm.hooks] (see {!Amac.Fingerprint}). *)
val fingerprint : t -> Amac.Fingerprint.t -> Amac.Fingerprint.t

val clone : t -> t
