(** Span-based trace events and their machine-readable exports.

    A {e complete} span is a named interval on one node's track (in the
    simulator: a broadcast opened at its [Broadcast_start] and closed by its
    ack); an {e instant} is a point event (a delivery, a decision, a crash).
    Both carry a category and free-form JSON args.

    Two export formats, both line-oriented enough to diff byte-for-byte:

    - {b JSONL}: one JSON object per line, in event order.
    - {b Chrome [trace_event]}: [{"traceEvents":[...]}] using ["ph":"X"]
      (complete) and ["ph":"i"] (instant) events with [ts]/[dur] in
      simulator ticks (interpreted as microseconds by viewers), so a file
      written by {!to_chrome} opens directly in Perfetto or
      [chrome://tracing].

    Both formats parse back ({!of_jsonl}, {!of_chrome}); an export followed
    by a parse yields the same event multiset — the round-trip contract the
    tests and the CI trace validator check. *)

type complete = {
  name : string;
  cat : string;
  start_time : int;  (** ticks *)
  duration : int;  (** ticks; 0 allowed *)
  node : int;  (** rendered as the Chrome [tid] *)
  args : (string * Json.t) list;
}

type instant = {
  name : string;
  cat : string;
  time : int;
  node : int;
  args : (string * Json.t) list;
}

type event = Complete of complete | Instant of instant

(** Chronological-ish total order used to canonicalise event lists before
    multiset comparison. *)
val compare_event : event -> event -> int

(** [same_multiset a b] — equal up to reordering. *)
val same_multiset : event list -> event list -> bool

val to_jsonl : event list -> string

val to_chrome : event list -> string

(** @raise Failure on malformed input or an event shape this module does not
    produce. *)
val of_jsonl : string -> event list

val of_chrome : string -> event list
