type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_finite f then
        Buffer.add_string buf (Printf.sprintf "%.12g" f)
      else Buffer.add_string buf "null"
  | String s -> escape_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          render buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf key;
          Buffer.add_char buf ':';
          render buf value)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  render buf t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over a string with an explicit cursor.     *)
(* ------------------------------------------------------------------ *)

type cursor = { src : string; mutable pos : int }

let fail cur msg =
  failwith (Printf.sprintf "Json.of_string: %s at offset %d" msg cur.pos)

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let rec skip_ws cur =
  match peek cur with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      skip_ws cur
  | Some _ | None -> ()

let expect cur c =
  match peek cur with
  | Some got when got = c -> advance cur
  | Some got -> fail cur (Printf.sprintf "expected %c, found %c" c got)
  | None -> fail cur (Printf.sprintf "expected %c, found end of input" c)

let literal cur word value =
  let len = String.length word in
  if
    cur.pos + len <= String.length cur.src
    && String.sub cur.src cur.pos len = word
  then begin
    cur.pos <- cur.pos + len;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | None -> fail cur "unterminated escape"
        | Some c ->
            advance cur;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if cur.pos + 4 > String.length cur.src then
                  fail cur "truncated \\u escape";
                let hex = String.sub cur.src cur.pos 4 in
                cur.pos <- cur.pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail cur "bad \\u escape"
                in
                (* Encode the code point as UTF-8 (BMP only; our renderer
                   only ever emits \u00xx for control characters). *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | c -> fail cur (Printf.sprintf "bad escape \\%c" c));
            loop ())
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec eat () =
    match peek cur with
    | Some c when is_num_char c ->
        advance cur;
        eat ()
    | Some _ | None -> ()
  in
  eat ();
  let token = String.sub cur.src start (cur.pos - start) in
  if token = "" then fail cur "expected a number";
  let is_float =
    String.exists (fun c -> c = '.' || c = 'e' || c = 'E') token
  in
  if is_float then
    match float_of_string_opt token with
    | Some f -> Float f
    | None -> fail cur (Printf.sprintf "bad number %s" token)
  else
    match int_of_string_opt token with
    | Some n -> Int n
    | None -> (
        (* Integer overflow: fall back to float. *)
        match float_of_string_opt token with
        | Some f -> Float f
        | None -> fail cur (Printf.sprintf "bad number %s" token))

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' -> String (parse_string cur)
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        List []
      end
      else begin
        let items = ref [] in
        let rec loop () =
          items := parse_value cur :: !items;
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              loop ()
          | Some ']' -> advance cur
          | _ -> fail cur "expected , or ] in array"
        in
        loop ();
        List (List.rev !items)
      end
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec loop () =
          skip_ws cur;
          let key = parse_string cur in
          skip_ws cur;
          expect cur ':';
          let value = parse_value cur in
          fields := (key, value) :: !fields;
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              loop ()
          | Some '}' -> advance cur
          | _ -> fail cur "expected , or } in object"
        in
        loop ();
        Obj (List.rev !fields)
      end
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected character %c" c)

let of_string s =
  let cur = { src = s; pos = 0 } in
  let value = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  value

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> a = b
  | Int a, Float b | Float b, Int a -> float_of_int a = b
  | String a, String b -> a = b
  | List a, List b ->
      List.length a = List.length b && List.for_all2 equal a b
  | Obj a, Obj b ->
      List.length a = List.length b
      && List.for_all2
           (fun (ka, va) (kb, vb) -> ka = kb && equal va vb)
           a b
  | _ -> false
