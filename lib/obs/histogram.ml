type t = {
  bounds : float array;  (* strictly increasing upper bounds *)
  counts : int array;  (* length = Array.length bounds + 1 (overflow) *)
  mutable count : int;
  mutable nan_count : int;
  mutable sum : float;
  mutable min_seen : float;
  mutable max_seen : float;
}

let default_buckets =
  [
    1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 500.0; 1_000.0; 2_000.0;
    5_000.0; 10_000.0; 20_000.0; 50_000.0; 100_000.0;
  ]

let create ~buckets =
  (match buckets with
  | [] -> invalid_arg "Histogram.create: no buckets"
  | _ -> ());
  let bounds = Array.of_list buckets in
  Array.iter
    (fun b ->
      if not (Float.is_finite b) then
        invalid_arg "Histogram.create: non-finite bucket bound")
    bounds;
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Histogram.create: bounds must be strictly increasing"
  done;
  {
    bounds;
    counts = Array.make (Array.length bounds + 1) 0;
    count = 0;
    nan_count = 0;
    sum = 0.0;
    min_seen = infinity;
    max_seen = neg_infinity;
  }

(* Index of the first bucket whose upper bound is >= v; the overflow bucket
   when v exceeds every bound. *)
let bucket_index t v =
  let lo = ref 0 and hi = ref (Array.length t.bounds) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.bounds.(mid) >= v then hi := mid else lo := mid + 1
  done;
  !lo

let observe t v =
  if Float.is_nan v then t.nan_count <- t.nan_count + 1
  else begin
    let i = bucket_index t v in
    t.counts.(i) <- t.counts.(i) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    if v < t.min_seen then t.min_seen <- v;
    if v > t.max_seen then t.max_seen <- v
  end

let count t = t.count

let nan_count t = t.nan_count

let sum t = t.sum

let bucket_counts t =
  let n = Array.length t.bounds in
  List.init (n + 1) (fun i ->
      ((if i < n then t.bounds.(i) else infinity), t.counts.(i)))

let quantile t q =
  if t.count = 0 then invalid_arg "Histogram.quantile: empty histogram";
  if Float.is_nan q || q < 0.0 || q > 1.0 then
    invalid_arg "Histogram.quantile: q out of range";
  (* Nearest-rank: the rank-th smallest observation, 1-indexed. The extreme
     ranks are known exactly — they are the tracked min/max — so only
     interior ranks need bucket interpolation. *)
  let rank = max 1 (int_of_float (ceil (q *. float_of_int t.count))) in
  if rank = 1 then t.min_seen
  else if rank = t.count then t.max_seen
  else begin
  let n = Array.length t.bounds in
  let rec find i cum =
    if i > n then t.max_seen
    else
      let cum' = cum + t.counts.(i) in
      if cum' >= rank then
        if i = n then t.max_seen (* overflow bucket: best bound we have *)
        else begin
          let lo = if i = 0 then t.min_seen else t.bounds.(i - 1) in
          let hi = t.bounds.(i) in
          let lo = max lo t.min_seen and hi = min hi t.max_seen in
          if t.counts.(i) <= 1 || hi <= lo then max lo (min hi t.max_seen)
          else
            lo
            +. (hi -. lo)
               *. (float_of_int (rank - cum) -. 0.5)
               /. float_of_int t.counts.(i)
        end
      else find (i + 1) cum'
  in
  let v = find 0 0 in
  max t.min_seen (min t.max_seen v)
  end

let observed_min t =
  if t.count = 0 then invalid_arg "Histogram.observed_min: empty histogram";
  t.min_seen

let observed_max t =
  if t.count = 0 then invalid_arg "Histogram.observed_max: empty histogram";
  t.max_seen
