type kind =
  | Boot of { incarnation : int }
  | Inject of { payload : int }
  | Broadcast
  | Deliver of { sender : int }
  | Ack
  | Decide of { value : int }

type vertex = { id : int; kind : kind; node : int; time : int; cause : int }

type t = { mutable data : vertex array; mutable len : int }

let dummy = { id = -1; kind = Broadcast; node = -1; time = -1; cause = -1 }

let create () = { data = Array.make 64 dummy; len = 0 }

let length t = t.len

let record t ~kind ~node ~time ~cause =
  if cause < -1 || cause >= t.len then
    invalid_arg
      (Printf.sprintf "Provenance.record: cause %d not in [-1, %d)" cause
         t.len);
  let id = t.len in
  if id = Array.length t.data then begin
    let grown = Array.make (2 * id) dummy in
    Array.blit t.data 0 grown 0 id;
    t.data <- grown
  end;
  t.data.(id) <- { id; kind; node; time; cause };
  t.len <- id + 1;
  id

let get t id =
  if id < 0 || id >= t.len then
    invalid_arg (Printf.sprintf "Provenance.get: no vertex %d" id);
  t.data.(id)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let to_list t =
  List.init t.len (fun i -> t.data.(i))

let check t =
  let bad = ref [] in
  let err fmt = Printf.ksprintf (fun s -> bad := s :: !bad) fmt in
  iter
    (fun v ->
      if v.cause >= v.id then err "vertex %d: cause %d not earlier" v.id v.cause;
      if v.cause < -1 then err "vertex %d: cause %d malformed" v.id v.cause;
      if v.cause = -1 then begin
        match v.kind with
        | Boot _ | Inject _ -> ()
        | Broadcast | Deliver _ | Ack | Decide _ ->
          err "vertex %d: non-root kind has no cause" v.id
      end
      else begin
        let c = t.data.(v.cause) in
        if c.time > v.time then
          err "vertex %d at t=%d: cause %d is later (t=%d)" v.id v.time c.id
            c.time;
        match v.kind with
        | Deliver _ | Ack -> (
          match c.kind with
          | Broadcast -> ()
          | _ -> err "vertex %d: delivery/ack not caused by a broadcast" v.id)
        | Boot _ | Inject _ ->
          err "vertex %d: root kind has a cause" v.id
        | Broadcast | Decide _ -> (
          match c.kind with
          | Boot _ | Inject _ | Deliver _ -> ()
          | Broadcast | Ack | Decide _ ->
            err "vertex %d: broadcast/decide not caused by an informational \
                 event" v.id)
      end)
    t;
  List.rev !bad

let kind_fields = function
  | Boot { incarnation } ->
    [ ("kind", Json.String "boot"); ("inc", Json.Int incarnation) ]
  | Inject { payload } ->
    [ ("kind", Json.String "inject"); ("payload", Json.Int payload) ]
  | Broadcast -> [ ("kind", Json.String "broadcast") ]
  | Deliver { sender } ->
    [ ("kind", Json.String "deliver"); ("from", Json.Int sender) ]
  | Ack -> [ ("kind", Json.String "ack") ]
  | Decide { value } ->
    [ ("kind", Json.String "decide"); ("value", Json.Int value) ]

let to_json t =
  let vs =
    List.map
      (fun v ->
        Json.Obj
          (( ("id", Json.Int v.id) :: kind_fields v.kind )
          @ [
              ("node", Json.Int v.node);
              ("t", Json.Int v.time);
              ("cause", Json.Int v.cause);
            ]))
      (to_list t)
  in
  Json.Obj [ ("vertices", Json.List vs) ]
