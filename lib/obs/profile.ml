type t = {
  meta : (string * Json.t) list;
  provenance : Provenance.t option;
  paths : Critpath.path list;
  energy : Energy.t;
  committed : int option;
  extra : (string * Json.t) list;
}

let make ?provenance ?committed ?(extra = []) ~meta ~energy () =
  let paths =
    match provenance with Some p -> Critpath.paths p | None -> []
  in
  { meta; provenance; paths; energy; committed; extra }

let to_json t =
  let dag =
    match t.provenance with
    | None -> Json.Null
    | Some p ->
      Json.Obj
        [
          ("vertices", Json.Int (Provenance.length p));
          ("ok", Json.Bool (Provenance.check p = []));
        ]
  in
  let critical_paths =
    match t.provenance with
    | None -> Json.Null
    | Some _ -> Critpath.to_json t.paths
  in
  let epc =
    match t.committed with
    | None -> Json.Null
    | Some c -> (
      match Energy.active_per_command t.energy ~committed:c with
      | None -> Json.Null
      | Some x -> Json.Float x)
  in
  Json.Obj
    ([
       ("meta", Json.Obj t.meta);
       ("dag", dag);
       ("critical_paths", critical_paths);
       ("energy", Energy.to_json t.energy);
       ("committed", match t.committed with None -> Json.Null | Some c -> Json.Int c);
       ("energy_per_command", epc);
     ]
    @ t.extra)

let render t =
  let b = Buffer.create 512 in
  Buffer.add_string b "=== profile ===\n";
  List.iter
    (fun (k, v) ->
      Buffer.add_string b (Printf.sprintf "%s: %s\n" k (Json.to_string v)))
    t.meta;
  (match t.provenance with
  | None -> ()
  | Some p ->
    Buffer.add_string b
      (Printf.sprintf "--- causal DAG: %d vertices (%s) ---\n"
         (Provenance.length p)
         (if Provenance.check p = [] then "ok" else "INVARIANT VIOLATIONS"));
    Buffer.add_string b "--- critical paths ---\n";
    Buffer.add_string b (Critpath.render t.paths));
  Buffer.add_string b "--- energy ---\n";
  Buffer.add_string b (Energy.render t.energy);
  (match t.committed with
  | None -> ()
  | Some c ->
    Buffer.add_string b (Printf.sprintf "committed commands: %d\n" c);
    (match Energy.active_per_command t.energy ~committed:c with
    | Some x ->
      Buffer.add_string b
        (Printf.sprintf "active ticks per committed command: %.2f\n" x)
    | None -> ()));
  List.iter
    (fun (k, v) ->
      Buffer.add_string b (Printf.sprintf "%s: %s\n" k (Json.to_string v)))
    t.extra;
  Buffer.contents b
