type edge_kind = Local | Message | Ack_wait

type edge = {
  e_from : int;
  e_to : int;
  e_kind : edge_kind;
  e_latency : int;
  e_owner : int;
}

type path = {
  decide_id : int;
  node : int;
  value : int;
  decided_at : int;
  root_id : int;
  root_time : int;
  total : int;
  hops : int;
  ack_waits : int;
  edges : edge list;
  shares : (int * int) list;
}

let edge_of prov (v : Provenance.vertex) =
  let c = Provenance.get prov v.cause in
  let kind =
    match v.kind with
    | Provenance.Deliver _ -> Message
    | Provenance.Ack -> Ack_wait
    | _ -> Local
  in
  (* MAC latency is the broadcaster's transmission; local steps are the
     handling node's own (zero-time) computation. *)
  let owner = match kind with Local -> v.node | Message | Ack_wait -> c.node in
  {
    e_from = c.id;
    e_to = v.id;
    e_kind = kind;
    e_latency = v.time - c.time;
    e_owner = owner;
  }

let path_of prov (decide : Provenance.vertex) =
  let value =
    match decide.kind with Provenance.Decide { value } -> value | _ -> 0
  in
  let rec walk v acc =
    if v.Provenance.cause = -1 then (v, acc)
    else
      let e = edge_of prov v in
      walk (Provenance.get prov v.cause) (e :: acc)
  in
  let root, edges = walk decide [] in
  let hops = List.length (List.filter (fun e -> e.e_kind = Message) edges) in
  let ack_waits =
    List.length (List.filter (fun e -> e.e_kind = Ack_wait) edges)
  in
  let shares = Hashtbl.create 7 in
  List.iter
    (fun e ->
      if e.e_latency > 0 then
        Hashtbl.replace shares e.e_owner
          (e.e_latency
          + (try Hashtbl.find shares e.e_owner with Not_found -> 0)))
    edges;
  let shares =
    Hashtbl.fold (fun node ticks acc -> (node, ticks) :: acc) shares []
    |> List.sort compare
  in
  {
    decide_id = decide.id;
    node = decide.node;
    value;
    decided_at = decide.time;
    root_id = root.Provenance.id;
    root_time = root.Provenance.time;
    total = decide.time - root.Provenance.time;
    hops;
    ack_waits;
    edges;
    shares;
  }

let paths prov =
  let out = ref [] in
  Provenance.iter
    (fun v ->
      match v.kind with
      | Provenance.Decide _ -> out := path_of prov v :: !out
      | _ -> ())
    prov;
  List.rev !out

let per_hop p =
  let mac = p.hops + p.ack_waits in
  if mac = 0 then 0. else float_of_int p.total /. float_of_int mac

let bottleneck p =
  if p.total = 0 then None
  else
    match p.shares with
    | [] -> None
    | shares ->
      let node, ticks =
        List.fold_left
          (fun (bn, bt) (n, t) -> if t > bt then (n, t) else (bn, bt))
          (List.hd shares) (List.tl shares)
      in
      Some (node, float_of_int ticks /. float_of_int p.total)

let kind_name = function
  | Local -> "local"
  | Message -> "message"
  | Ack_wait -> "ack_wait"

let edge_json e =
  Json.Obj
    [
      ("from", Json.Int e.e_from);
      ("to", Json.Int e.e_to);
      ("kind", Json.String (kind_name e.e_kind));
      ("latency", Json.Int e.e_latency);
      ("owner", Json.Int e.e_owner);
    ]

let path_json p =
  let bn, bf = match bottleneck p with Some (n, f) -> (n, f) | None -> (-1, 0.) in
  Json.Obj
    [
      ("decide_id", Json.Int p.decide_id);
      ("node", Json.Int p.node);
      ("value", Json.Int p.value);
      ("decided_at", Json.Int p.decided_at);
      ("root_id", Json.Int p.root_id);
      ("root_time", Json.Int p.root_time);
      ("total", Json.Int p.total);
      ("hops", Json.Int p.hops);
      ("ack_waits", Json.Int p.ack_waits);
      ("per_hop", Json.Float (per_hop p));
      ("bottleneck", Json.Int bn);
      ("bottleneck_frac", Json.Float bf);
      ( "shares",
        Json.List
          (List.map
             (fun (n, t) ->
               Json.Obj [ ("node", Json.Int n); ("ticks", Json.Int t) ])
             p.shares) );
      ("edges", Json.List (List.map edge_json p.edges));
    ]

let to_json ps = Json.Obj [ ("paths", Json.List (List.map path_json ps)) ]

let render ps =
  let b = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string b
        (Printf.sprintf
           "decide node=%d value=%d at t=%d: %d ticks from root t=%d, %d \
            hops + %d ack-waits (%.2f ticks/MAC edge)\n"
           p.node p.value p.decided_at p.total p.root_time p.hops p.ack_waits
           (per_hop p));
      (match bottleneck p with
      | Some (n, f) ->
        Buffer.add_string b
          (Printf.sprintf "  bottleneck: node %d holds %.0f%% of the path\n" n
             (100. *. f))
      | None -> ());
      List.iter
        (fun (n, t) ->
          Buffer.add_string b (Printf.sprintf "    node %d: %d ticks\n" n t))
        p.shares)
    ps;
  Buffer.contents b
