(** Critical-path extraction over a {!Provenance} DAG.

    Each [Decide] vertex has a unique chain of [cause] pointers back to a
    root ([Boot] or [Inject]): a chain of information flow without which
    that decision could not have happened at that time. Cause times are
    monotone along the chain, so the edge latencies telescope — a path's
    edge latencies sum to [decided_at - root_time] exactly (an invariant
    the tests assert).

    Edges are classified by what the interval was spent on:

    - a [Broadcast → Deliver] edge is MAC-layer {e message latency} and
      counts as one {e hop};
    - a [Broadcast → Ack] edge is MAC-layer {e ack waiting} (the sender
      blocked until its acknowledgement — a send-and-wait step's cost;
      acks are leaves, so these never appear on decide paths);
    - every other edge (info → broadcast, info → decide) is {e local}: its
      latency is the {e residence time} between a node learning something
      and relaying it — under the model's zero-time computation this is
      pure MAC-serialization wait (the node's own earlier sends draining),
      which is exactly the contention cost the abstract MAC layer models.

    [hops × per-hop latency] is directly comparable to the paper's
    O(D·F_ack) decision bound: on a line of diameter D, wPAXOS paths show
    hops growing linearly in D (bench B12 gates this exactly).

    Each MAC edge's latency is attributed to the {e broadcasting} node —
    the node whose transmission the path waited on — giving a per-node
    share of critical-path time; the node with the largest share is the
    path's bottleneck (for wPAXOS: the leader, quantified). *)

type edge_kind = Local | Message | Ack_wait

type edge = {
  e_from : int;  (** causing vertex id *)
  e_to : int;  (** caused vertex id *)
  e_kind : edge_kind;
  e_latency : int;  (** ticks: time(e_to) - time(e_from) *)
  e_owner : int;  (** node the latency is attributed to *)
}

type path = {
  decide_id : int;
  node : int;  (** deciding node *)
  value : int;  (** decided value *)
  decided_at : int;
  root_id : int;
  root_time : int;
  total : int;  (** decided_at - root_time = sum of edge latencies *)
  hops : int;  (** [Message] edges on the path *)
  ack_waits : int;  (** [Ack_wait] edges on the path *)
  edges : edge list;  (** root-to-decide order *)
  shares : (int * int) list;  (** node -> attributed ticks, sorted by node *)
}

(** One path per [Decide] vertex, in vertex-id (= decision) order. *)
val paths : Provenance.t -> path list

(** Mean MAC-edge latency on the path: [total / (hops + ack_waits)] (0 when
    the path has no MAC edges). Comparable to the scheduler's F_ack. *)
val per_hop : path -> float

(** The node holding the largest share of critical-path time, with its
    fraction of [total]. [None] for zero-length paths. Ties break to the
    smaller node id. *)
val bottleneck : path -> (int * float) option

(** Deterministic JSON: [{"paths":[...]}] with per-path edges and shares. *)
val to_json : path list -> Json.t

(** Human-readable multi-line report. *)
val render : path list -> string
