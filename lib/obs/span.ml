type complete = {
  name : string;
  cat : string;
  start_time : int;
  duration : int;
  node : int;
  args : (string * Json.t) list;
}

type instant = {
  name : string;
  cat : string;
  time : int;
  node : int;
  args : (string * Json.t) list;
}

type event = Complete of complete | Instant of instant

let time_of = function
  | Complete { start_time; _ } -> start_time
  | Instant { time; _ } -> time

let compare_event a b =
  match Int.compare (time_of a) (time_of b) with
  | 0 -> Stdlib.compare a b
  | c -> c

let same_multiset a b =
  List.sort compare_event a = List.sort compare_event b

(* The single process id every track lives under; node = Chrome tid. *)
let pid = 1

let json_of_event event =
  let common name cat ts node args =
    [
      ("name", Json.String name);
      ("cat", Json.String cat);
      ("ts", Json.Int ts);
      ("pid", Json.Int pid);
      ("tid", Json.Int node);
      ("args", Json.Obj args);
    ]
  in
  match event with
  | Complete { name; cat; start_time; duration; node; args } ->
      Json.Obj
        (("ph", Json.String "X")
        :: ("dur", Json.Int duration)
        :: common name cat start_time node args)
  | Instant { name; cat; time; node; args } ->
      Json.Obj
        (("ph", Json.String "i")
        :: ("s", Json.String "t")
        :: common name cat time node args)

let to_jsonl events =
  String.concat ""
    (List.map (fun e -> Json.to_string (json_of_event e) ^ "\n") events)

let to_chrome events =
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (List.map json_of_event events));
         ("displayTimeUnit", Json.String "ms");
       ])

let get_string field json =
  match Json.member field json with
  | Some (Json.String s) -> s
  | _ -> failwith (Printf.sprintf "Span: missing string field %S" field)

let get_int field json =
  match Json.member field json with
  | Some (Json.Int n) -> n
  | _ -> failwith (Printf.sprintf "Span: missing int field %S" field)

let get_args json =
  match Json.member "args" json with
  | Some (Json.Obj fields) -> fields
  | None -> []
  | Some _ -> failwith "Span: args is not an object"

let event_of_json json =
  match get_string "ph" json with
  | "X" ->
      Complete
        {
          name = get_string "name" json;
          cat = get_string "cat" json;
          start_time = get_int "ts" json;
          duration = get_int "dur" json;
          node = get_int "tid" json;
          args = get_args json;
        }
  | "i" | "I" ->
      Instant
        {
          name = get_string "name" json;
          cat = get_string "cat" json;
          time = get_int "ts" json;
          node = get_int "tid" json;
          args = get_args json;
        }
  | ph -> failwith (Printf.sprintf "Span: unsupported event phase %S" ph)

let of_jsonl s =
  String.split_on_char '\n' s
  |> List.filter (fun line -> String.trim line <> "")
  |> List.map (fun line -> event_of_json (Json.of_string line))

let of_chrome s =
  match Json.member "traceEvents" (Json.of_string s) with
  | Some (Json.List events) -> List.map event_of_json events
  | _ -> failwith "Span: no traceEvents array"
