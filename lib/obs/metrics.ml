type instrument =
  | I_counter of int ref
  | I_gauge of float ref
  | I_histogram of Histogram.t

type registry = {
  tbl : (string * (string * string) list, instrument) Hashtbl.t;
}

type counter = int ref

type gauge = float ref

type histogram = Histogram.t

let create () = { tbl = Hashtbl.create 64 }

let sort_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let register reg ~name ~labels ~kind ~make ~extract =
  let labels = sort_labels labels in
  let key = (name, labels) in
  match Hashtbl.find_opt reg.tbl key with
  | Some instrument -> (
      match extract instrument with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf
               "Metrics: %s already registered with a different kind (wanted \
                %s)"
               name kind))
  | None ->
      let instrument, v = make () in
      Hashtbl.replace reg.tbl key instrument;
      v

let counter reg ?(labels = []) name =
  register reg ~name ~labels ~kind:"counter"
    ~make:(fun () ->
      let r = ref 0 in
      (I_counter r, r))
    ~extract:(function I_counter r -> Some r | _ -> None)

let inc c = incr c

let add c n = c := !c + n

let counter_value c = !c

let gauge reg ?(labels = []) name =
  register reg ~name ~labels ~kind:"gauge"
    ~make:(fun () ->
      let r = ref 0.0 in
      (I_gauge r, r))
    ~extract:(function I_gauge r -> Some r | _ -> None)

let set g v = g := v

let observe_max g v = if v > !g then g := v

let gauge_value g = !g

let histogram reg ?(labels = []) ?(buckets = Histogram.default_buckets) name =
  register reg ~name ~labels ~kind:"histogram"
    ~make:(fun () ->
      let h = Histogram.create ~buckets in
      (I_histogram h, h))
    ~extract:(function I_histogram h -> Some h | _ -> None)

let observe h v = Histogram.observe h v

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type histogram_summary = {
  count : int;
  sum : float;
  buckets : (float * int) list;
  p50 : float option;
  p90 : float option;
  p99 : float option;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram_summary of histogram_summary

type sample = {
  name : string;
  labels : (string * string) list;
  value : value;
}

type snapshot = sample list

let summarize h =
  let count = Histogram.count h in
  let q x = if count = 0 then None else Some (Histogram.quantile h x) in
  {
    count;
    sum = Histogram.sum h;
    buckets = Histogram.bucket_counts h;
    p50 = q 0.5;
    p90 = q 0.9;
    p99 = q 0.99;
  }

let compare_sample a b =
  match String.compare a.name b.name with
  | 0 -> compare a.labels b.labels
  | c -> c

let snapshot reg =
  Hashtbl.fold
    (fun (name, labels) instrument acc ->
      let value =
        match instrument with
        | I_counter r -> Counter !r
        | I_gauge r -> Gauge !r
        | I_histogram h -> Histogram_summary (summarize h)
      in
      { name; labels; value } :: acc)
    reg.tbl []
  |> List.sort compare_sample

let diff ~before ~after =
  List.map
    (fun sample ->
      match sample.value with
      | Counter n -> (
          match
            List.find_opt
              (fun old ->
                old.name = sample.name && old.labels = sample.labels)
              before
          with
          | Some { value = Counter old; _ } ->
              { sample with value = Counter (n - old) }
          | Some _ | None -> sample)
      | Gauge _ | Histogram_summary _ -> sample)
    after

let find snapshot ?(labels = []) name =
  let labels = sort_labels labels in
  List.find_opt (fun s -> s.name = name && s.labels = labels) snapshot

let counter_of snapshot ?labels name =
  match find snapshot ?labels name with
  | None -> 0
  | Some { value = Counter n; _ } -> n
  | Some _ -> invalid_arg (Printf.sprintf "Metrics.counter_of: %s is not a counter" name)

let json_of_labels labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let json_of_value = function
  | Counter n -> [ ("type", Json.String "counter"); ("value", Json.Int n) ]
  | Gauge v -> [ ("type", Json.String "gauge"); ("value", Json.Float v) ]
  | Histogram_summary h ->
      let opt = function Some v -> Json.Float v | None -> Json.Null in
      [
        ("type", Json.String "histogram");
        ("count", Json.Int h.count);
        ("sum", Json.Float h.sum);
        ( "buckets",
          Json.List
            (List.map
               (fun (bound, n) ->
                 Json.Obj
                   [
                     ( "le",
                       if Float.is_finite bound then Json.Float bound
                       else Json.String "inf" );
                     ("count", Json.Int n);
                   ])
               h.buckets) );
        ("p50", opt h.p50);
        ("p90", opt h.p90);
        ("p99", opt h.p99);
      ]

let to_json snapshot =
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           (("name", Json.String s.name)
           :: ("labels", json_of_labels s.labels)
           :: json_of_value s.value))
       snapshot)

let render_labels labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
    ^ "}"

let render_sample s =
  let body =
    match s.value with
    | Counter n -> string_of_int n
    | Gauge v -> Printf.sprintf "%.12g" v
    | Histogram_summary h ->
        let q name = function
          | Some v -> Printf.sprintf " %s=%.12g" name v
          | None -> ""
        in
        Printf.sprintf "count=%d sum=%.12g%s%s%s" h.count h.sum
          (q "p50" h.p50) (q "p90" h.p90) (q "p99" h.p99)
  in
  Printf.sprintf "%s%s = %s" s.name (render_labels s.labels) body

let render snapshot =
  String.concat "" (List.map (fun s -> render_sample s ^ "\n") snapshot)

let pp fmt snapshot =
  List.iter (fun s -> Format.fprintf fmt "%s@." (render_sample s)) snapshot
