(** Fixed-bucket histograms with quantile estimation.

    Buckets are defined by a strictly increasing list of upper bounds; an
    implicit overflow bucket catches everything above the last bound.
    Observations are O(log #buckets); memory is O(#buckets) regardless of
    how many values are observed — the shape the metrics registry needs for
    per-event latencies. Quantiles are estimated by nearest-rank over the
    cumulative bucket counts with linear interpolation inside the bucket,
    clamped to the observed [min]/[max] (so estimates of integer-valued
    latencies are exact whenever a bucket holds a single distinct value). *)

type t

(** Upper bounds suited to simulator tick latencies: a 1-2-5 decade series
    from 1 to 100_000. *)
val default_buckets : float list

(** [create ~buckets] — [buckets] are finite, strictly increasing upper
    bounds. @raise Invalid_argument on an empty or unsorted list, or
    non-finite bounds. *)
val create : buckets:float list -> t

(** [observe t v] adds one observation. NaN observations are counted in
    [nan_count] but otherwise ignored (they poison no estimate). *)
val observe : t -> float -> unit

val count : t -> int

val nan_count : t -> int

val sum : t -> float

(** [bucket_counts t] — per-bucket (upper_bound, count) pairs, the overflow
    bucket last as [(infinity, count)]. Counts are not cumulative. *)
val bucket_counts : t -> (float * int) list

(** [quantile t q] with [q] in [\[0, 1\]].
    @raise Invalid_argument on an empty histogram or out-of-range [q]. *)
val quantile : t -> float -> float

(** [observed_min t] / [observed_max t] — extremes of the non-NaN
    observations. @raise Invalid_argument on an empty histogram. *)
val observed_min : t -> float

val observed_max : t -> float
