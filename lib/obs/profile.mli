(** One run's profiling report: critical paths + energy accounting, with a
    human-readable rendering and a deterministic JSON export (same seed ⇒
    byte-identical bytes — the contract [amac_sim profile] and the CI
    observability job rely on).

    The report is assembled from parts the caller already has — a
    {!Provenance} DAG (optional: SMR runs profile energy/latency without
    engine-level decides), an {!Energy} account, and free-form [meta] /
    [extra] sections (algorithm, topology, seed; SMR commit-latency
    breakdowns). *)

type t

val make :
  ?provenance:Provenance.t ->
  ?committed:int ->
  (* for energy-per-command *)
  ?extra:(string * Json.t) list ->
  meta:(string * Json.t) list ->
  energy:Energy.t ->
  unit ->
  t

(** [{"meta":{...},"dag":{"vertices":N,"ok":bool}|null,
    "critical_paths":{...}|null,"energy":{...},
    "energy_per_command":x|null, <extra fields>}] — deterministic. *)
val to_json : t -> Json.t

val render : t -> string
