type segments = { active : int; idle : int; crashed : int }

type t = { duration : int; per_node : segments array }

(* Interval-union arithmetic on half-open [lo, hi) tick ranges. *)

let clamp ~duration (lo, hi) = (max 0 lo, min duration hi)

let union ivs =
  let ivs =
    List.filter (fun (lo, hi) -> hi > lo) ivs |> List.sort compare
  in
  let rec merge = function
    | (a, b) :: (c, d) :: rest when c <= b -> merge ((a, max b d) :: rest)
    | iv :: rest -> iv :: merge rest
    | [] -> []
  in
  merge ivs

let measure ivs = List.fold_left (fun acc (lo, hi) -> acc + hi - lo) 0 ivs

(* |a \ b| for unioned (sorted, disjoint) interval lists. *)
let measure_minus a b =
  let overlap (a1, a2) (b1, b2) = max 0 (min a2 b2 - max a1 b1) in
  List.fold_left
    (fun acc ia ->
      acc + (snd ia - fst ia)
      - List.fold_left (fun o ib -> o + overlap ia ib) 0 b)
    0 a

let account ~n ~duration spans =
  let active_ivs = Array.make n [] in
  let crash_at = Array.make n [] in
  let recover_at = Array.make n [] in
  List.iter
    (fun (ev : Span.event) ->
      match ev with
      | Span.Complete { name = "broadcast"; start_time; duration = d; node; _ }
        when node >= 0 && node < n ->
        active_ivs.(node) <-
          clamp ~duration (start_time, start_time + d) :: active_ivs.(node)
      | Span.Instant { name = "crash"; time; node; _ }
        when node >= 0 && node < n ->
        crash_at.(node) <- time :: crash_at.(node)
      | Span.Instant { name = "recover"; time; node; _ }
        when node >= 0 && node < n ->
        recover_at.(node) <- time :: recover_at.(node)
      | _ -> ())
    spans;
  let per_node =
    Array.init n (fun node ->
        (* Pair each crash with the first later recovery; an unmatched
           crash extends to the end of the run. *)
        let crashes = List.sort compare crash_at.(node) in
        let recovers = ref (List.sort compare recover_at.(node)) in
        let crashed_ivs =
          List.map
            (fun c ->
              let rec next () =
                match !recovers with
                | r :: rest when r <= c ->
                  recovers := rest;
                  next ()
                | r :: rest ->
                  recovers := rest;
                  r
                | [] -> duration
              in
              clamp ~duration (c, next ()))
            crashes
          |> union
        in
        let active_u = union active_ivs.(node) in
        let active = measure_minus active_u crashed_ivs in
        let crashed = measure crashed_ivs in
        { active; crashed; idle = duration - active - crashed })
  in
  { duration; per_node }

let totals t =
  Array.fold_left
    (fun acc s ->
      {
        active = acc.active + s.active;
        idle = acc.idle + s.idle;
        crashed = acc.crashed + s.crashed;
      })
    { active = 0; idle = 0; crashed = 0 }
    t.per_node

let waiting_fraction t =
  let { active; idle; _ } = totals t in
  let up = active + idle in
  if up = 0 then 0. else float_of_int idle /. float_of_int up

let active_per_command t ~committed =
  if committed <= 0 then None
  else Some (float_of_int (totals t).active /. float_of_int committed)

let seg_json s =
  Json.Obj
    [
      ("active", Json.Int s.active);
      ("idle", Json.Int s.idle);
      ("crashed", Json.Int s.crashed);
    ]

let to_json t =
  Json.Obj
    [
      ("duration", Json.Int t.duration);
      ("totals", seg_json (totals t));
      ("waiting_fraction", Json.Float (waiting_fraction t));
      ("per_node", Json.List (Array.to_list (Array.map seg_json t.per_node)));
    ]

let render t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "duration %d ticks, waiting fraction %.3f\n" t.duration
       (waiting_fraction t));
  Array.iteri
    (fun node s ->
      Buffer.add_string b
        (Printf.sprintf "  node %d: active %d, idle %d, crashed %d\n" node
           s.active s.idle s.crashed))
    t.per_node;
  Buffer.contents b
