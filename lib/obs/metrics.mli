(** A typed metrics registry: counters, gauges and fixed-bucket histograms,
    each identified by a name plus a set of string labels.

    The registry is the write side: the engine, runner, fault layer and
    binaries register instruments (registration is idempotent — asking for
    the same (name, labels) twice returns the same instrument) and bump them
    on the hot path with plain int/float mutations. The read side is a
    {!snapshot}: an immutable, deterministically ordered list of samples
    that can be rendered as text, exported as JSON, or subtracted
    ({!diff}) from an earlier snapshot to isolate one phase of a run.

    Determinism contract: a snapshot's order depends only on the instrument
    names and labels (sorted), never on registration or hash order, so two
    identical runs produce byte-identical [to_json] output. *)

type registry

type counter

type gauge

type histogram

val create : unit -> registry

(** [counter reg ?labels name] registers (or finds) a monotonically
    increasing integer counter. @raise Invalid_argument if (name, labels)
    is already registered as a different instrument kind. *)
val counter : registry -> ?labels:(string * string) list -> string -> counter

val inc : counter -> unit

val add : counter -> int -> unit

val counter_value : counter -> int

(** [gauge reg ?labels name] registers (or finds) a float gauge. *)
val gauge : registry -> ?labels:(string * string) list -> string -> gauge

val set : gauge -> float -> unit

(** [observe_max g v] — high-water-mark update: [set] only if [v] exceeds
    the current value. *)
val observe_max : gauge -> float -> unit

val gauge_value : gauge -> float

(** [histogram reg ?labels ?buckets name] registers (or finds) a
    fixed-bucket histogram ({!Histogram.default_buckets} by default).
    [buckets] is only consulted on first registration. *)
val histogram :
  registry ->
  ?labels:(string * string) list ->
  ?buckets:float list ->
  string ->
  histogram

val observe : histogram -> float -> unit

(** {1 Snapshots} *)

type histogram_summary = {
  count : int;
  sum : float;
  buckets : (float * int) list;  (** non-cumulative; overflow bound = inf *)
  p50 : float option;  (** [None] when [count = 0] *)
  p90 : float option;
  p99 : float option;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram_summary of histogram_summary

type sample = {
  name : string;
  labels : (string * string) list;  (** sorted by key *)
  value : value;
}

(** Samples sorted by (name, labels) — deterministic for identical runs. *)
type snapshot = sample list

val snapshot : registry -> snapshot

(** [diff ~before ~after] subtracts counter values ([after] minus [before];
    instruments absent from [before] count from 0) and keeps [after]'s
    gauges and histograms — the delta attributable to the phase between the
    two snapshots. Samples only present in [before] are dropped. *)
val diff : before:snapshot -> after:snapshot -> snapshot

(** [find snapshot ?labels name] — the matching sample, if any. [labels]
    need not be pre-sorted. *)
val find : snapshot -> ?labels:(string * string) list -> string -> sample option

(** [counter_of snapshot ?labels name] — convenience: the counter's value,
    or 0 when absent. @raise Invalid_argument if the sample exists but is
    not a counter. *)
val counter_of : snapshot -> ?labels:(string * string) list -> string -> int

val to_json : snapshot -> Json.t

(** [render snapshot] — human-oriented text, one line per sample. *)
val render : snapshot -> string

val pp : Format.formatter -> snapshot -> unit
