(** A minimal JSON tree with a deterministic renderer and a strict parser.

    The observability layer must produce byte-identical output for identical
    runs (the determinism contract: same seed, same snapshot, same export
    bytes), so rendering is fully specified: no whitespace, object fields in
    the order given, floats printed with [%.12g], non-finite floats as
    [null]. The parser accepts exactly the JSON this module (and standard
    tools) produce; it exists so exports can be validated and round-tripped
    without adding a dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [to_string t] renders compactly (no spaces or newlines), deterministic
    in [t]. *)
val to_string : t -> string

(** [of_string s] parses one JSON value (surrounding whitespace allowed).
    Numbers without [.], [e] or [E] parse as [Int]; others as [Float].
    @raise Failure with a position-annotated message on malformed input. *)
val of_string : string -> t

(** [member key t] is the value of field [key] when [t] is an [Obj] that has
    it. *)
val member : string -> t -> t option

(** [equal a b] — structural equality, except [Int n] and [Float f] compare
    equal when [f = float_of_int n] (a renderer may legally print [3.0] as
    [3]). *)
val equal : t -> t -> bool
