(** The causal provenance DAG of one simulation run.

    Where {!Span} records {e when} things happened, provenance records {e
    why}: every vertex names the single event that caused it, so walking
    [cause] pointers from any vertex reaches the root input (a node boot or
    an injection) whose consequence it is. The engine appends one vertex per
    causally meaningful event:

    - [Boot] — a node's [init] ran (time 0, or again on recovery); a root.
    - [Inject] — an external injection was delivered; a root.
    - [Broadcast] — a broadcast was accepted by the MAC layer (discarded
      broadcasts from busy senders get {e no} vertex); caused by the
      sender's latest {e informational} event — its most recent [Boot],
      [Inject] or [Deliver]. This is the Lamport-style attribution: the
      broadcast's content can depend on everything the node knew, and its
      latest input is the newest thing it can relay. Algorithms drain
      internal send queues from ack handlers, so attributing to the literal
      triggering event would collapse every critical path into one node's
      ack chain; with informational attribution the serialization wait
      surfaces as {e latency} on the info→[Broadcast] edge instead, and
      paths track message relays across nodes (see {!Critpath}).
    - [Deliver] — a message physically arrived at a receiver; caused by its
      [Broadcast]. Byzantine substitution does not change the cause: the
      vertex records what the wire did, not what the payload claimed.
    - [Ack] — the sender's MAC-layer acknowledgement; caused by its
      [Broadcast]. A leaf: nothing is attributed to an ack.
    - [Decide] — a node's first decision; caused by the node's latest
      informational event.

    The DAG is acyclic by construction: a vertex's [cause] is always an
    already-recorded vertex ([cause < id]), or [-1] for roots. Recording is
    append-only and purely observational — enabling it never changes engine
    behaviour, so the determinism contract extends to the export: same seed,
    same DAG bytes. *)

type kind =
  | Boot of { incarnation : int }
  | Inject of { payload : int }
  | Broadcast
  | Deliver of { sender : int }  (** sender {e node id} (not vertex id) *)
  | Ack
  | Decide of { value : int }

type vertex = {
  id : int;  (** dense, in recording order *)
  kind : kind;
  node : int;
  time : int;  (** engine ticks *)
  cause : int;  (** vertex id of the causing event; [-1] for roots *)
}

type t

val create : unit -> t

(** [record t ~kind ~node ~time ~cause] appends a vertex and returns its id.
    @raise Invalid_argument if [cause] is neither [-1] nor an existing id
    (which would break acyclicity). *)
val record : t -> kind:kind -> node:int -> time:int -> cause:int -> int

val length : t -> int

(** @raise Invalid_argument on an out-of-range id. *)
val get : t -> int -> vertex

(** In id (= recording) order. *)
val iter : (vertex -> unit) -> t -> unit

val to_list : t -> vertex list

(** Structural invariant check: acyclicity ([cause < id]), root kinds are
    [Boot]/[Inject] only, every [Deliver]/[Ack] is caused by a [Broadcast],
    every [Broadcast]/[Decide] is caused by an informational event
    ([Boot]/[Inject]/[Deliver]), and time is monotone along cause edges.
    Returns human-readable violations (empty = well-formed). *)
val check : t -> string list

(** Deterministic: [{"vertices":[{"id":..,"kind":..,"node":..,"t":..,
    "cause":..},...]}] with kind-specific fields ([inc], [payload], [from],
    [value]) after [kind]. *)
val to_json : t -> Json.t
