(** Energy/waiting accounting over span exports.

    SNIPPETS.md's coordination-cost argument (and ROADMAP item 4): what a
    consensus node spends most of its time on is not computing but {e
    waiting}. Under the abstract MAC model computation is zero-time, so a
    node's timeline folds into exactly three segments:

    - {b active} — transmitting: inside a ["broadcast"] complete span
      (opened at [Broadcast_start], closed by the ack or a crash);
    - {b crashed} — between a ["crash"] instant and the matching
      ["recover"] (or the end of the run);
    - {b idle} — everything else: up, radio silent, waiting on others.

    Per node, [active + idle + crashed = duration] {e exactly} (idle is the
    remainder after interval-union arithmetic, so overlap or truncation in a
    hand-built trace can never break the identity — an acceptance-criteria
    invariant the tests assert).

    Energy proxy: transmission dominates radio energy budgets, so
    [active_per_command] (total active ticks / committed commands) is the
    energy-per-committed-command figure B12 reports, and
    [waiting_fraction] (idle / up-time) is the waiting share. *)

type segments = { active : int; idle : int; crashed : int }

type t = {
  duration : int;  (** run end time, ticks *)
  per_node : segments array;
}

(** [account ~n ~duration spans] folds a {!Span} export (as produced by
    [Amac.Trace_export.spans]) into per-node segments. Intervals are
    clamped to [\[0, duration)]; active time inside a crashed window counts
    as crashed. *)
val account : n:int -> duration:int -> Span.event list -> t

(** Sum over nodes. *)
val totals : t -> segments

(** [idle / (active + idle)] over all nodes — the fraction of total
    {e up}-time spent waiting. 0 when there is no up-time. *)
val waiting_fraction : t -> float

(** [total active / committed] — mean transmission ticks per committed
    command. [None] when [committed = 0]. *)
val active_per_command : t -> committed:int -> float option

val to_json : t -> Json.t

val render : t -> string
