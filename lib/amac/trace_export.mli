(** Span-based causal view of a {!Trace}.

    The abstract MAC layer's unit of work is the acknowledged broadcast:
    [u] hands a message to the layer, every neighbor receives it, then [u]
    gets its ack. {!spans} renders exactly that structure: each
    [Broadcast_start] opens a {e span} on the sender's track that its
    [Acked] closes (duration = ack latency), deliveries are instant child
    events on the receivers' tracks carrying the sender id (the causal
    edge), and decides, crashes, recoveries, link drops, discards and
    stutters are instants on their node's track.

    A broadcast whose ack never lands (sender crashed mid-broadcast, or
    restarted as a new incarnation) is closed at the crash — or at the end
    of the trace — with an ["unacked": true] arg, so lost work is visible
    rather than missing.

    The result renders to JSONL or Chrome [trace_event] JSON via
    {!Obs.Span}; determinism: the event list (and hence both exports) is a
    pure function of the trace. *)

(** [spans entries] — [entries] in trace order (as in
    {!Engine.outcome.trace}). *)
val spans : Trace.entry list -> Obs.Span.event list
