type plan = { receives : (int * int) list; ack_at : int }

type t = {
  name : string;
  fack : int;
  plan : now:int -> sender:int -> neighbors:int list -> plan;
  unreliable_plan :
    (now:int -> sender:int -> candidates:int list -> ack_at:int ->
     (int * int) list)
    option;
  contention_stretch : (contention:int -> int) option;
}

let make ~name ~fack plan =
  if fack < 1 then invalid_arg "Scheduler.make: fack must be >= 1";
  { name; fack; plan; unreliable_plan = None; contention_stretch = None }

let interference ?name ?cap ~alpha t =
  if alpha < 0 then invalid_arg "Scheduler.interference: alpha must be >= 0";
  let cap = match cap with Some c -> c | None -> 4 * t.fack in
  if cap < 0 then invalid_arg "Scheduler.interference: cap must be >= 0";
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "%s+sinr(a=%d,cap=%d)" t.name alpha cap
  in
  let stretch ~contention = min cap (alpha * max 0 contention) in
  { t with name; contention_stretch = Some stretch }

let with_unreliable t ~plan = { t with unreliable_plan = Some plan }

let bernoulli_unreliable rng ~p t =
  if p < 0.0 || p > 1.0 then
    invalid_arg "Scheduler.bernoulli_unreliable: p must be in [0, 1]";
  let plan ~now ~sender:_ ~candidates ~ack_at =
    List.filter_map
      (fun candidate ->
        if Rng.float rng 1.0 < p then
          Some (candidate, Rng.int_range rng ~lo:(now + 1) ~hi:(max (now + 1) ack_at))
        else None)
      candidates
  in
  {
    t with
    name = Printf.sprintf "%s+flaky(%.2f)" t.name p;
    unreliable_plan = Some plan;
  }

let uniform_delay ~delay ~now ~neighbors =
  {
    receives = List.map (fun v -> (v, now + delay)) neighbors;
    ack_at = now + delay;
  }

type decision = { ack_delay : int; delays : (int * int) list }

let record t =
  let recorded = ref [] in
  let plan ~now ~sender ~neighbors =
    let plan = t.plan ~now ~sender ~neighbors in
    let decision =
      {
        ack_delay = plan.ack_at - now;
        delays = List.map (fun (v, time) -> (v, time - now)) plan.receives;
      }
    in
    recorded := decision :: !recorded;
    plan
  in
  ( { t with name = Printf.sprintf "%s+recorded" t.name; plan },
    fun () -> List.rev !recorded )

let replay ?(fallback_delay = 1) decisions =
  if fallback_delay < 1 then
    invalid_arg "Scheduler.replay: fallback_delay must be >= 1";
  let fack =
    List.fold_left
      (fun acc d -> max acc (max 1 d.ack_delay))
      fallback_delay decisions
  in
  let remaining = ref decisions in
  let plan ~now ~sender:_ ~neighbors =
    match !remaining with
    | [] -> uniform_delay ~delay:fallback_delay ~now ~neighbors
    | decision :: rest ->
        remaining := rest;
        let ack_delay = max 1 decision.ack_delay in
        (* Clamping makes replay total: a decision list recorded against one
           topology (or mutated by the shrinker) stays a valid plan against
           any other — unknown neighbors get the ack delay, out-of-window
           delays are pulled back into (now, ack]. *)
        let delay_for v =
          match List.assoc_opt v decision.delays with
          | Some d -> min ack_delay (max 1 d)
          | None -> ack_delay
        in
        {
          receives = List.map (fun v -> (v, now + delay_for v)) neighbors;
          ack_at = now + ack_delay;
        }
  in
  make ~name:(Printf.sprintf "replay(%d)" (List.length decisions)) ~fack plan

let synchronous =
  make ~name:"synchronous" ~fack:1 (fun ~now ~sender:_ ~neighbors ->
      uniform_delay ~delay:1 ~now ~neighbors)

let fixed ~delay =
  make
    ~name:(Printf.sprintf "fixed(%d)" delay)
    ~fack:delay
    (fun ~now ~sender:_ ~neighbors -> uniform_delay ~delay ~now ~neighbors)

let max_delay ~fack =
  make
    ~name:(Printf.sprintf "max-delay(%d)" fack)
    ~fack
    (fun ~now ~sender:_ ~neighbors -> uniform_delay ~delay:fack ~now ~neighbors)

let random rng ~fack =
  make
    ~name:(Printf.sprintf "random(%d)" fack)
    ~fack
    (fun ~now ~sender:_ ~neighbors ->
      let ack_delay = Rng.int_range rng ~lo:1 ~hi:fack in
      let receives =
        List.map
          (fun v -> (v, now + Rng.int_range rng ~lo:1 ~hi:ack_delay))
          neighbors
      in
      { receives; ack_at = now + ack_delay })

let jittered rng ~fack ~spread =
  if spread < 0 || spread >= fack then
    invalid_arg "Scheduler.jittered: need 0 <= spread < fack";
  let center = max 1 (fack / 2) in
  make
    ~name:(Printf.sprintf "jittered(%d+-%d)" center spread)
    ~fack
    (fun ~now ~sender:_ ~neighbors ->
      let draw () =
        let d = center + Rng.int_range rng ~lo:(-spread) ~hi:spread in
        min fack (max 1 d)
      in
      let receives = List.map (fun v -> (v, now + draw ())) neighbors in
      let latest =
        List.fold_left (fun acc (_, t) -> max acc t) (now + 1) receives
      in
      { receives; ack_at = latest })

let per_edge ~name ~fack ~delay =
  make ~name ~fack (fun ~now ~sender ~neighbors ->
      let clamp d = min fack (max 1 d) in
      let receives =
        List.map
          (fun receiver -> (receiver, now + clamp (delay ~sender ~receiver)))
          neighbors
      in
      let latest =
        List.fold_left (fun acc (_, t) -> max acc t) (now + 1) receives
      in
      { receives; ack_at = latest })

let delayed_cut ~base_fack ~until ~cut =
  let fack = max base_fack (until + 1) in
  make
    ~name:(Printf.sprintf "delayed-cut(until=%d)" until)
    ~fack
    (fun ~now ~sender ~neighbors ->
      let time_for receiver =
        if cut ~sender ~receiver then max (now + 1) until else now + 1
      in
      let receives = List.map (fun v -> (v, time_for v)) neighbors in
      let latest =
        List.fold_left (fun acc (_, t) -> max acc t) (now + 1) receives
      in
      { receives; ack_at = latest })

let bursty ~fack ~fast_len ~slow_len =
  if fast_len < 1 || slow_len < 1 then
    invalid_arg "Scheduler.bursty: epochs must be >= 1 tick";
  let period = fast_len + slow_len in
  make
    ~name:(Printf.sprintf "bursty(%d fast/%d slow,fack=%d)" fast_len slow_len fack)
    ~fack
    (fun ~now ~sender:_ ~neighbors ->
      let delay = if now mod period < fast_len then 1 else fack in
      uniform_delay ~delay ~now ~neighbors)

let slow_node ~fack ~node =
  make
    ~name:(Printf.sprintf "slow-node(%d,fack=%d)" node fack)
    ~fack
    (fun ~now ~sender ~neighbors ->
      let delay = if sender = node then fack else 1 in
      uniform_delay ~delay ~now ~neighbors)
