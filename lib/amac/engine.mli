(** The discrete-event simulation kernel implementing the abstract MAC layer
    contract of Sec 2.

    Semantics enforced by the engine, per the model definition:

    - {b Acknowledged local broadcast.} A broadcast by [u] at time [t] is
      delivered to {e every} non-crashed neighbor of [u] at
      scheduler-chosen times, and [u] receives an ack at a scheduler-chosen
      time no earlier than any delivery and no later than [t + F_ack]. The
      engine asserts this contract against the scheduler on every broadcast.
    - {b Busy senders discard.} A [Broadcast] action issued while an ack is
      pending is discarded (and counted) — message queueing belongs to the
      algorithm, as in wPAXOS's broadcast service.
    - {b Crashes} happen at adversary-chosen times and may fall mid-broadcast:
      deliveries from the crashed node scheduled at or after the crash time
      are cancelled, so some neighbors receive the in-flight message and
      others do not (Sec 2's non-atomicity). Crashed nodes take no further
      steps and receive nothing.
    - {b Recoveries} model amnesiac restart: at its scheduled time a crashed
      node rejoins with {e fresh} state (its [init] runs again, actions and
      all) and a bumped incarnation number. Everything still in flight to or
      from the previous incarnation — deliveries and the pending ack — is
      recognised as stale and dropped, so a new incarnation never observes
      its predecessor's traffic. Crash/recovery schedules are validated up
      front: per node they must alternate crash < recover < crash < ... with
      strictly increasing times.
    - {b Link faults} ([drop]) and {b stutter windows} ([stutter]) are
      predicate hooks consulted per event: [drop] eats an otherwise-due
      delivery (counted in [link_dropped]) without touching the sender's
      ack — the abstract MAC layer's guarantee is exactly what a loss window
      suspends; [stutter] lets a node's handlers run (it receives, its state
      evolves) but suppresses the actions they return (counted in
      [stuttered]). Both compose with every scheduler unchanged; [Fault]
      (lib/fault) compiles declarative plans into these hooks.
    - {b Zero-time local computation}: handlers run at the event's timestamp;
      all elapsed time comes from the scheduler.
    - {b Interference mode} (scheduler with [contention_stretch]): the
      engine tracks, incrementally, how many of each node's neighbors are
      mid-broadcast, and shifts every plan by the scheduler's stretch of
      the sender's local contention — the effective ack bound becomes
      [F_ack + stretch]. Tracking is O(degree) per transmission start/end
      and O(1) per read; with the hook absent the pre-existing hot path
      runs unchanged, and a hook returning 0 (zero contention, or
      [interference ~alpha:0]) leaves every event byte-identical to the
      base scheduler's run. When [?obs] is given, interference runs
      additionally register a contention histogram/high-water gauge and
      global + per-node ack-stretch histograms — contention-free runs
      never register these families, keeping their snapshots unchanged.
    - {b Topology deltas} ([topo_deltas]): churn/mobility events applied
      in place to a private copy of the graph (priority 5, after every
      other kind of the tick).
    - Simultaneous events are processed deterministically: crashes, then
      recoveries, then deliveries, then acks; FIFO within a class.

    The engine never interprets messages; it moves them. Consensus-specific
    checking lives in [Consensus.Checker]. *)

type outcome = {
  decisions : (int * int) option array;
      (** per node, first [(value, time)] decided, if any *)
  extra_decides : (int * int * int) list;
      (** (node, value, time) for decide actions after a node's first with a
          {e different} value — irrevocability violations, should be [] *)
  crashed : bool array;
  incarnations : int array;
      (** per node, how many times it recovered (0 = original incarnation) *)
  broadcasts : int;  (** broadcasts accepted by the MAC layer *)
  deliveries : int;  (** message deliveries performed *)
  discarded : int;  (** broadcasts attempted while busy *)
  dropped : int;  (** deliveries cancelled by crashes or stale incarnations *)
  link_dropped : int;  (** deliveries eaten by the [drop] fault hook *)
  stuttered : int;  (** actions suppressed by the [stutter] fault hook *)
  suppressed : int;
      (** deliveries eaten by the [substitute] adversary hook (Byzantine
          selective silence) *)
  substituted : int;
      (** deliveries whose payload the [substitute] adversary hook replaced
          (Byzantine equivocation / forgery) *)
  max_ids_per_message : int;
  unreliable_deliveries : int;
      (** deliveries the scheduler granted on unreliable edges *)
  injected : int;
      (** injection events handed to [on_inject] (scheduled injections whose
          node was down at pop time are counted in [dropped] instead) *)
  topo_changes : int;
      (** topology deltas applied (churn/mobility events from
          [?topo_deltas]) *)
  end_time : int;  (** time of the last processed event *)
  events_processed : int;
  hit_max_time : bool;  (** true when stopped by the [max_time] guard *)
  causal : Causal.t option;
  provenance : Obs.Provenance.t option;
      (** the causal DAG handed in via [?provenance] (shared, not copied:
          the caller's object, echoed for convenience) *)
  trace : Trace.entry list;  (** empty unless [record_trace] *)
}

(** [all_decided outcome] is true iff every non-crashed node decided. *)
val all_decided : outcome -> bool

(** [decision_times outcome] is each non-crashed node's decision time (nodes
    that never decided are omitted). *)
val decision_times : outcome -> int list

(** [latest_decision outcome] is the maximum decision time, or [None] when no
    node decided. *)
val latest_decision : outcome -> int option

(** {1 Resumable simulation}

    [run] below drains a simulation in one call. The model checker
    ([Mcheck]) and other drivers that need to interleave execution with
    budget checks or state observation use the step API instead: [create]
    builds the simulation (initialising every node at time 0, exactly as
    [run] does), [step] processes one event, [snapshot] captures the outcome
    so far. [run] is [create] + a [step] loop + [snapshot]. *)

type ('s, 'm) sim

(** [create algorithm ~topology ~scheduler ~inputs ...] — parameters as in
    {!run}. Node [init] handlers (and their first broadcasts) execute here,
    at time 0. *)
val create :
  ?identities:Node_id.t array ->
  ?give_n:bool ->
  ?give_diameter:bool ->
  ?crashes:(int * int) list ->
  ?recoveries:(int * int) list ->
  ?drop:(now:int -> sender:int -> receiver:int -> bool) ->
  ?stutter:(now:int -> node:int -> bool) ->
  ?substitute:(now:int -> sender:int -> receiver:int -> 'm -> 'm option) ->
  ?injections:(int * int * int) list ->
  ?on_inject:
    (now:int -> payload:int -> Algorithm.ctx -> 's -> 'm Algorithm.action list) ->
  ?topo_deltas:(int * Topology.delta) list ->
  ?clock:int ref ->
  ?max_time:int ->
  ?stop_when_all_decided:bool ->
  ?track_causal:bool ->
  ?provenance:Obs.Provenance.t ->
  ?record_trace:bool ->
  ?pp_msg:('m -> string) ->
  ?unreliable:Topology.t ->
  ?obs:Obs.Metrics.registry ->
  ('s, 'm) Algorithm.t ->
  topology:Topology.t ->
  scheduler:Scheduler.t ->
  inputs:int array ->
  ('s, 'm) sim

(** [step sim] processes the next event. [`Stepped] = one event processed
    (the simulation may or may not have more); [`Done] = nothing left to do
    (queue drained, or every live node decided under
    [stop_when_all_decided]); [`Capped] = the next event lay beyond
    [max_time], so the run stopped with [hit_max_time] set. After [`Done] or
    [`Capped], further calls return [`Done]. *)
val step : ('s, 'm) sim -> [ `Stepped | `Done | `Capped ]

(** [finished sim] — true once [step] can make no further progress. *)
val finished : ('s, 'm) sim -> bool

(** [now sim] — the timestamp of the last processed event (0 initially). *)
val now : ('s, 'm) sim -> int

(** [snapshot sim] captures the outcome as of the events processed so far.
    The arrays are copies; [snapshot] may be called mid-run and the
    simulation continued afterwards. *)
val snapshot : ('s, 'm) sim -> outcome

(** [run algorithm ~topology ~scheduler ~inputs ...] executes the algorithm
    on every node until all non-crashed nodes have decided and the event
    queue drains, or until [max_time].

    @param identities per-node identities; default dense unique ids [0..n-1].
    @param inputs initial consensus values, one per node.
    @param give_n whether [ctx.n] is provided to nodes (default [true];
      Thm 3.9's victims run with [false]).
    @param give_diameter whether [ctx.diameter] is provided (default
      [false]).
    @param crashes adversarial crash schedule as [(node, time)] pairs.
    @param recoveries amnesiac-restart schedule as [(node, time)] pairs;
      each recovery must follow a strictly earlier crash of the same node
      (per-node alternation is validated, see module preamble).
    @param drop per-delivery link-fault predicate; [true] eats the delivery.
    @param stutter per-event predicate; while [true] for a node, its
      handlers run but their actions are suppressed.
    @param substitute the Byzantine-adversary hook, consulted once per
      otherwise-due delivery (after crash/stale/link-fault filtering):
      [substitute ~now ~sender ~receiver msg] returns [Some msg'] to deliver
      [msg'] in place of [msg] — returning a {e physically} different value
      counts in [substituted] (equivocation: the hook may answer differently
      per receiver of the same broadcast) — or [None] to silently eat the
      delivery (counted in [suppressed], selective silence). The sender's
      ack is never delayed or withheld: the MAC layer kept its delivery
      contract, the {e transmitter} lied. [lib/byz] compiles Byzantine
      strategies into this hook.
    @param injections external inputs as [(node, time, payload)] triples —
      client submits in the SMR sense. Each is scheduled as an event (after
      any delivery/ack of the same tick) and handed to [on_inject] on the
      target node's current state; actions returned go through the normal
      fault-aware application. An injection whose node is crashed at pop
      time is lost (counted in [dropped]); without an [on_inject] handler
      injections are inert.
    @param on_inject handler for injection payloads, running in the target
      node's context like any other handler.
    @param topo_deltas churn/mobility schedule as [(time, delta)] pairs:
      each delta is applied {e in place} at its timestamp (after every
      delivery, ack and injection of the tick — event priority 5, so runs
      without deltas keep their exact event order). The engine works on a
      private {!Topology.copy} whenever the schedule is non-empty, so the
      caller's topology is never mutated. Deliveries already scheduled
      over a removed edge still land (the message was on the wire);
      subsequent broadcasts see the new neighbor set. [ctx.degree] and
      [ctx.diameter] snapshot the initial graph. A malformed delta
      (adding a present edge, removing an absent one) raises at
      application time.
    @param clock a cell the engine keeps equal to the current event time —
      lets callbacks buried inside the algorithm (e.g. an SMR apply hook)
      timestamp occurrences without threading [now] through every layer.
    @param max_time stop popping events after this time (default
      [1_000_000]).
    @param stop_when_all_decided stop early once every live node decided
      (default [true]; set [false] to let protocols drain, e.g. to observe
      post-decision message complexity).
    @param track_causal enable {!Causal} influence tracking.
    @param provenance a caller-owned {!Obs.Provenance} DAG the run appends
      its causal vertices to (mirrors [obs]): one [Boot] root per node init
      (time 0 and again on every recovery), one [Inject] root per handled
      injection, one [Broadcast] per MAC-accepted broadcast (busy discards
      get none) caused by the sender's latest {e informational} event (its
      most recent [Boot]/[Inject]/[Deliver] — Lamport-style attribution;
      see {!Obs.Provenance}), one [Deliver] per actual delivery and one
      [Ack] per live ack — both caused by their broadcast — and one
      [Decide] per node's first decision, caused by the node's latest
      informational event. Recording is purely observational (never
      changes scheduling or handler inputs), so identical seeded runs append
      identical DAGs whether or not anything observes them. The same object
      is echoed in [outcome.provenance]; [Trace.Delivered] entries carry
      their broadcast's vertex id while a DAG is collected.
    @param record_trace keep a {!Trace}; [pp_msg] renders payloads.
    @param unreliable a second graph of {e unreliable} edges (disjoint from
      the reliable topology): the scheduler's [unreliable_plan] may deliver a
      broadcast to any subset of the sender's unreliable neighbors within
      the broadcast window, and the ack never waits for them — the dual-graph
      variant of the abstract MAC layer the paper's Sec 2 sets aside and
      Sec 5 poses as an open question.
    @param obs a metrics registry the run instruments itself into: event,
      delivery, ack, drop (labelled by reason: [stale] vs [link]), discard,
      stutter, crash, recovery and unreliable-delivery counters; per-node
      broadcast counters; the event-queue depth high-water mark; and
      ack-latency and decide-latency histograms — the latter two both as a
      global aggregate and per node (a [node] label), so leader and
      follower latency distributions separate. All instruments carry
      [algorithm] and [scheduler] labels. Identical seeded runs write
      identical metrics (see {!Obs.Metrics.snapshot}).
    @raise Invalid_argument if [inputs] length mismatches the topology, if an
      unreliable edge duplicates a reliable one, if the crash/recovery
      schedule is malformed (out-of-range node, negative time, duplicate
      crash of the same incarnation, recovery without or at the same instant
      as a crash), or if the scheduler violates its contract. *)
val run :
  ?identities:Node_id.t array ->
  ?give_n:bool ->
  ?give_diameter:bool ->
  ?crashes:(int * int) list ->
  ?recoveries:(int * int) list ->
  ?drop:(now:int -> sender:int -> receiver:int -> bool) ->
  ?stutter:(now:int -> node:int -> bool) ->
  ?substitute:(now:int -> sender:int -> receiver:int -> 'm -> 'm option) ->
  ?injections:(int * int * int) list ->
  ?on_inject:
    (now:int -> payload:int -> Algorithm.ctx -> 's -> 'm Algorithm.action list) ->
  ?topo_deltas:(int * Topology.delta) list ->
  ?clock:int ref ->
  ?max_time:int ->
  ?stop_when_all_decided:bool ->
  ?track_causal:bool ->
  ?provenance:Obs.Provenance.t ->
  ?record_trace:bool ->
  ?pp_msg:('m -> string) ->
  ?unreliable:Topology.t ->
  ?obs:Obs.Metrics.registry ->
  ('s, 'm) Algorithm.t ->
  topology:Topology.t ->
  scheduler:Scheduler.t ->
  inputs:int array ->
  outcome
