type t = int

(* xxhash-style round over the native 63-bit int: the accumulator takes
   one xor, a rotation and one multiply per mixed word — [x * p2] is off
   the dependency chain, so the per-field latency is about half of a
   splitmix round. Avalanche quality comes from {!to_int}'s finalizer,
   which every consumer applies once per finished fold (the raw
   accumulator's low bits are NOT well mixed — a bare multiply barely
   stirs them). Constants fit the 63-bit int literal range (the canonical
   64-bit ones don't); multiplication wraps mod 2^63, which is fine. *)
let p1 = 0x2545F4914F6CDD1D
let p2 = 0x165667B19E3779F9

let empty = 0x1505 (* FNV-ish offset basis; any odd-ish constant works *)

let[@inline] int x acc =
  let h = acc lxor (x * p2) in
  let h = (h lsl 31) lor (h lsr 32) in
  h * p1

let[@inline] bool b acc = int (if b then 1 else 0) acc

let[@inline] char c acc = int (Char.code c) acc

let string s acc =
  let len = String.length s in
  let acc = ref (int len acc) in
  (* 8 bytes per round keeps the loop short; the tail is padded by length
     (already mixed), so "a" and "a\000" cannot alias. *)
  let i = ref 0 in
  while !i + 8 <= len do
    acc := int (Int64.to_int (String.get_int64_le s !i)) !acc;
    i := !i + 8
  done;
  while !i < len do
    acc := int (Char.code (String.unsafe_get s !i)) !acc;
    incr i
  done;
  !acc

let option f v acc =
  match v with None -> int 0x6f70 acc | Some x -> f x (int 0x736f acc)

let rec fold_elems f xs acc =
  match xs with [] -> acc | x :: rest -> fold_elems f rest (f x acc)

let list f xs acc = fold_elems f xs (int (List.length xs) acc)

let array f xs acc =
  let len = Array.length xs in
  let acc = ref (int len acc) in
  for i = 0 to len - 1 do
    acc := f (Array.unsafe_get xs i) !acc
  done;
  !acc

(* Splitmix-style finalizer: one per fold, so it can afford the full
   avalanche the per-field round skips. Consumers index tables with the
   low bits of the result, which this leaves uniformly mixed. *)
let to_int h =
  let h = h lxor (h lsr 29) in
  let h = h * p1 in
  let h = h lxor (h lsr 32) in
  h land max_int

module Table = struct
  (* Open addressing with linear probing; no deletion. [vals.(i) = None]
     marks an empty slot, so any int (including 0) is a valid key. *)
  type 'a table = {
    mutable keys : int array;
    mutable vals : 'a option array;
    mutable count : int;
  }

  type 'a t = 'a table

  let rec capacity_for n c = if c * 2 >= n * 3 then c else capacity_for n (c * 2)

  let create n =
    let cap = capacity_for (max 1 n) 16 in
    { keys = Array.make cap 0; vals = Array.make cap None; count = 0 }

  let length t = t.count

  (* The slot where [key] lives or would be inserted. *)
  let slot t key =
    let mask = Array.length t.keys - 1 in
    let i = ref (key land max_int land mask) in
    while
      match t.vals.(!i) with Some _ -> t.keys.(!i) <> key | None -> false
    do
      i := (!i + 1) land mask
    done;
    !i

  let grow t =
    let old_keys = t.keys and old_vals = t.vals in
    t.keys <- Array.make (2 * Array.length old_keys) 0;
    t.vals <- Array.make (2 * Array.length old_vals) None;
    Array.iteri
      (fun i v ->
        match v with
        | Some _ ->
            let j = slot t old_keys.(i) in
            t.keys.(j) <- old_keys.(i);
            t.vals.(j) <- v
        | None -> ())
      old_vals

  let ensure_headroom t =
    if t.count * 3 >= Array.length t.keys * 2 then grow t

  let find t key =
    let i = slot t key in
    t.vals.(i)

  let set t key value =
    ensure_headroom t;
    let i = slot t key in
    if t.vals.(i) = None then t.count <- t.count + 1;
    t.keys.(i) <- key;
    t.vals.(i) <- Some value

  let upsert t key f =
    ensure_headroom t;
    let i = slot t key in
    (match t.vals.(i) with
    | None ->
        t.count <- t.count + 1;
        t.keys.(i) <- key
    | Some _ -> ());
    t.vals.(i) <- Some (f t.vals.(i))

  let fold f t acc =
    let acc = ref acc in
    Array.iteri
      (fun i v -> match v with Some v -> acc := f t.keys.(i) v !acc | None -> ())
      t.vals;
    !acc
end
