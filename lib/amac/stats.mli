(** Small statistics and table-formatting helpers for the bench harness.

    NaN policy: {!percentile} and {!stddev} drop NaN samples before
    computing (an all-NaN list is rejected like an empty one), and
    {!stddev} clamps a rounding-negative variance to zero — degenerate
    inputs never propagate NaN into a table or a [BENCH.json]. *)

(** Fixed-bucket histograms with quantile estimation (see
    {!Obs.Histogram}); re-exported here so bench code can aggregate
    per-event latencies without holding every sample. *)
module Histogram = Obs.Histogram

(** [mean xs] — arithmetic mean. @raise Invalid_argument on []. *)
val mean : float list -> float

(** [minimum xs] / [maximum xs]. @raise Invalid_argument on []. *)
val minimum : float list -> float

val maximum : float list -> float

(** [percentile p xs] with [p] in [\[0, 100\]] (nearest-rank). NaN samples
    are ignored. @raise Invalid_argument on [], all-NaN input, or NaN or
    out-of-range [p]. *)
val percentile : float -> float list -> float

val median : float list -> float

(** [stddev xs] — population standard deviation; NaN samples are ignored
    and the result is never NaN. @raise Invalid_argument on [] or all-NaN
    input. *)
val stddev : float list -> float

(** Aligned plain-text tables, used by [bench/main.exe] to print the
    experiment tables recorded in EXPERIMENTS.md. Each table doubles as the
    machine-readable record behind [BENCH.json]: {!to_json} mirrors the
    title, columns, rows and notes exactly as printed, plus free-form
    metadata ({!set_meta}) and raw measurement series ({!add_series}) with
    p50/p99 summaries. *)
module Table : sig
  type t

  (** [create ~title ~columns] starts a table. *)
  val create : title:string -> columns:string list -> t

  (** [add_row t cells] appends a row; cell count must match the header. *)
  val add_row : t -> string list -> unit

  (** [add_note t note] appends a free-text footnote line. *)
  val add_note : t -> string -> unit

  (** [set_meta t key value] attaches a key/value pair (seeds, F_ack, …)
      carried only in the JSON mirror. *)
  val set_meta : t -> string -> string -> unit

  (** [add_series t ~name values] attaches a raw measurement series; the
      JSON mirror reports count/mean/p50/p99/min/max (over the finite
      values) alongside the values themselves. *)
  val add_series : t -> name:string -> float list -> unit

  (** [render t] is the formatted table (title, ruled header, rows, notes). *)
  val render : t -> string

  (** [print t] writes [render t] to stdout. *)
  val print : t -> unit

  (** [to_json t] — the machine-readable mirror: title, columns, rows and
      notes exactly as printed, plus meta and series. *)
  val to_json : t -> Obs.Json.t
end
