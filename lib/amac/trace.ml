type entry =
  | Broadcast_start of { time : int; node : int; ids : int; msg : string }
  | Delivered of {
      time : int;
      node : int;
      sender : int;
      msg : string;
      cause : int;
    }
  | Acked of { time : int; node : int }
  | Decided of { time : int; node : int; value : int }
  | Discarded of { time : int; node : int; msg : string }
  | Crashed of { time : int; node : int }
  | Recovered of { time : int; node : int; incarnation : int }
  | Link_dropped of { time : int; node : int; sender : int }
  | Stuttered of { time : int; node : int; actions : int }
  | Suppressed of { time : int; node : int; sender : int }
  | Substituted of { time : int; node : int; sender : int; msg : string }

let time_of = function
  | Broadcast_start { time; _ }
  | Delivered { time; _ }
  | Acked { time; _ }
  | Decided { time; _ }
  | Discarded { time; _ }
  | Crashed { time; _ }
  | Recovered { time; _ }
  | Link_dropped { time; _ }
  | Stuttered { time; _ }
  | Suppressed { time; _ }
  | Substituted { time; _ } ->
      time

let node_of = function
  | Broadcast_start { node; _ }
  | Delivered { node; _ }
  | Acked { node; _ }
  | Decided { node; _ }
  | Discarded { node; _ }
  | Crashed { node; _ }
  | Recovered { node; _ }
  | Link_dropped { node; _ }
  | Stuttered { node; _ }
  | Suppressed { node; _ }
  | Substituted { node; _ } ->
      node

let pp_entry fmt = function
  | Broadcast_start { time; node; ids; msg } ->
      Format.fprintf fmt "[t=%4d] node %d broadcast (%d ids): %s" time node ids
        msg
  | Delivered { time; node; sender; msg; cause } ->
      if cause >= 0 then
        Format.fprintf fmt "[t=%4d] node %d received from %d (cause #%d): %s"
          time node sender cause msg
      else
        Format.fprintf fmt "[t=%4d] node %d received from %d: %s" time node
          sender msg
  | Acked { time; node } ->
      Format.fprintf fmt "[t=%4d] node %d acked" time node
  | Decided { time; node; value } ->
      Format.fprintf fmt "[t=%4d] node %d DECIDED %d" time node value
  | Discarded { time; node; msg } ->
      Format.fprintf fmt "[t=%4d] node %d discarded (busy): %s" time node msg
  | Crashed { time; node } ->
      Format.fprintf fmt "[t=%4d] node %d CRASHED" time node
  | Recovered { time; node; incarnation } ->
      Format.fprintf fmt "[t=%4d] node %d RECOVERED (incarnation %d)" time node
        incarnation
  | Link_dropped { time; node; sender } ->
      Format.fprintf fmt "[t=%4d] node %d lost delivery from %d (link fault)"
        time node sender
  | Stuttered { time; node; actions } ->
      Format.fprintf fmt "[t=%4d] node %d stuttered (%d actions suppressed)"
        time node actions
  | Suppressed { time; node; sender } ->
      Format.fprintf fmt
        "[t=%4d] node %d delivery from %d suppressed (Byzantine silence)" time
        node sender
  | Substituted { time; node; sender; msg } ->
      Format.fprintf fmt
        "[t=%4d] node %d received FORGED payload from %d: %s" time node sender
        msg

let pp fmt entries =
  List.iter (fun e -> Format.fprintf fmt "%a@." pp_entry e) entries

let decisions entries =
  List.filter_map
    (function
      | Decided { time; node; value } -> Some (node, value, time)
      | Broadcast_start _ | Delivered _ | Acked _ | Discarded _ | Crashed _
      | Recovered _ | Link_dropped _ | Stuttered _ | Suppressed _
      | Substituted _ ->
          None)
    entries

let for_node entries node = List.filter (fun e -> node_of e = node) entries

(* Cell precedence for the timeline: higher wins when events collide. *)
let cell_rank = function
  | 'D' | 'X' | 'R' -> 5
  | 'B' -> 4
  | '~' | '!' | 's' | '#' | '*' -> 3
  | 'r' -> 2
  | 'a' -> 1
  | _ -> 0

let cell_of = function
  | Broadcast_start _ -> 'B'
  | Delivered _ -> 'r'
  | Acked _ -> 'a'
  | Decided _ -> 'D'
  | Discarded _ -> '~'
  | Crashed _ -> 'X'
  | Recovered _ -> 'R'
  | Link_dropped _ -> '!'
  | Stuttered _ -> 's'
  | Suppressed _ -> '#'
  | Substituted _ -> '*'

let timeline ~n entries =
  let by_time = Hashtbl.create 64 in
  List.iter
    (fun entry ->
      let time = time_of entry and node = node_of entry in
      let row =
        match Hashtbl.find_opt by_time time with
        | Some row -> row
        | None ->
            let row = Array.make n '.' in
            Hashtbl.replace by_time time row;
            row
      in
      let cell = cell_of entry in
      if node >= 0 && node < n && cell_rank cell > cell_rank row.(node) then
        row.(node) <- cell)
    entries;
  let times =
    Hashtbl.fold (fun time _ acc -> time :: acc) by_time []
    |> List.sort Int.compare
  in
  let buf = Buffer.create 256 in
  let header =
    String.concat ""
      (List.init n (fun i -> string_of_int (i mod 10)))
  in
  Buffer.add_string buf ("   t  " ^ header ^ "\n");
  List.iter
    (fun time ->
      let row = Hashtbl.find by_time time in
      Buffer.add_string buf
        (Printf.sprintf "%4d  %s\n" time
           (String.init n (fun i -> row.(i)))))
    times;
  Buffer.contents buf
