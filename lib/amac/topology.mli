(** Network topologies.

    A topology is an undirected, connected graph over node indices
    [\[0, n)]. The abstract MAC layer model (Sec 2 of the paper) fixes a
    graph [G = (V, E)] whose edges are the reliable-communication pairs; this
    module provides the standard families used throughout the experiments
    plus the structural queries ([diameter], [bfs_dist], ...) the analyses
    need. The paper-specific gadget networks (Fig 1's networks A and B,
    Fig 2's K_D) are assembled from these primitives in
    [Lowerbound.Gadgets]. *)

type t

(** {1 Construction} *)

(** [of_edges ~n edges] builds a graph over [n] nodes from an undirected edge
    list. Self-loops and duplicate edges are rejected.
    @raise Invalid_argument on out-of-range endpoints, self-loops or
    duplicates. *)
val of_edges : n:int -> (int * int) list -> t

(** [clique n] is the complete graph: the paper's "single hop" setting. *)
val clique : int -> t

(** [line n] is the path 0 – 1 – ... – n-1 (diameter n-1): the worst case for
    the Thm 3.10 partition bound. *)
val line : int -> t

(** [ring n] is the cycle on [n >= 3] nodes. *)
val ring : int -> t

(** [star n] is one hub (index 0) and [n-1] leaves: the canonical aggregation
    bottleneck motivating wPAXOS's trees. *)
val star : int -> t

(** [grid ~width ~height] is the 2-D mesh, row-major indexing. *)
val grid : width:int -> height:int -> t

(** [torus ~width ~height] is the 2-D mesh with wraparound;
    requires [width >= 3] and [height >= 3] so wraparound edges are distinct. *)
val torus : width:int -> height:int -> t

(** [binary_tree n] is the complete binary heap-shaped tree on [n] nodes
    (children of [i] at [2i+1], [2i+2]). *)
val binary_tree : int -> t

(** [barbell ~clique_size] is two cliques joined by a single edge — high [n],
    diameter 3; exercises bridge congestion. *)
val barbell : clique_size:int -> t

(** [star_of_lines ~arms ~arm_len] is [arms] disjoint paths of [arm_len]
    nodes, each attached to one central hub. Diameter [2 * arm_len]; size
    [arms * arm_len + 1]. Fixing [arm_len] while growing [arms] grows [n]
    with constant [D] — the E3 workload separating O(D·F_ack) from
    O(n·F_ack). *)
val star_of_lines : arms:int -> arm_len:int -> t

(** [lollipop ~clique_size ~tail_len] is a clique with a path of [tail_len]
    extra nodes hanging off node 0. *)
val lollipop : clique_size:int -> tail_len:int -> t

(** [random_connected rng ~n ~extra_edges] is a uniformly random spanning
    tree plus [extra_edges] distinct random chords: always connected,
    randomly shaped. Deterministic in [rng]. *)
val random_connected : Rng.t -> n:int -> extra_edges:int -> t

(** [disjoint_union a b] places [a] and [b] side by side ([b]'s indices
    shifted by [size a]). The result is disconnected; callers are expected to
    [add_edges] afterwards. Used to assemble the Fig 1 / Fig 2 gadgets. *)
val disjoint_union : t -> t -> t

(** [add_edges t edges] is [t] plus the given edges.
    @raise Invalid_argument on invalid or duplicate edges. *)
val add_edges : t -> (int * int) list -> t

(** {1 In-place deltas}

    Churn and mobility are expressed as edge deltas applied {e in place}
    (O(degree) each, no rebuild), so a 1000-node graph under churn never
    re-allocates its adjacency structure. A topology is a mutable value once
    deltas are in play: callers that need the original intact should
    {!copy} first (the engine does exactly that when given a delta
    schedule). *)

type delta =
  | Add_edge of int * int  (** endpoints unordered; edge must be absent *)
  | Remove_edge of int * int  (** edge must be present *)

val pp_delta : Format.formatter -> delta -> unit

(** [copy t] is an independent topology; deltas applied to either side are
    invisible to the other. *)
val copy : t -> t

(** [add_edge t u v] inserts the edge in place, keeping neighbor lists
    sorted. @raise Invalid_argument if invalid or already present. *)
val add_edge : t -> int -> int -> unit

(** [remove_edge t u v] deletes the edge in place.
    @raise Invalid_argument if invalid or absent. *)
val remove_edge : t -> int -> int -> unit

(** [apply_delta t d] is [add_edge] or [remove_edge] per the delta. *)
val apply_delta : t -> delta -> unit

(** [apply_deltas t ds] applies in list order; equivalent to rebuilding via
    [of_edges] from the resulting edge set. *)
val apply_deltas : t -> delta list -> unit

(** {1 Queries} *)

(** [size t] is the number of nodes [n]. *)
val size : t -> int

(** [neighbors t u] is the adjacency list of [u], sorted increasing. *)
val neighbors : t -> int -> int list

(** [degree t u] is [List.length (neighbors t u)]. *)
val degree : t -> int -> int

(** [has_edge t u v] tests adjacency. *)
val has_edge : t -> int -> int -> bool

(** [edges t] is each undirected edge once, as [(u, v)] with [u < v]. *)
val edges : t -> (int * int) list

(** [num_edges t] is [List.length (edges t)]. *)
val num_edges : t -> int

(** [bfs_dist t u] is the array of hop distances from [u]
    ([max_int] for unreachable nodes). *)
val bfs_dist : t -> int -> int array

(** [is_connected t] is true iff every node is reachable from node 0
    (vacuously true for [n <= 1]). *)
val is_connected : t -> bool

(** [eccentricity t u] is the maximum distance from [u] to any node.
    @raise Invalid_argument if [t] is disconnected. *)
val eccentricity : t -> int -> int

(** [diameter t] is the paper's [D]: the maximum eccentricity.
    @raise Invalid_argument if [t] is disconnected. *)
val diameter : t -> int

(** [is_clique t] is true iff every pair of distinct nodes is adjacent. *)
val is_clique : t -> bool

(** [pp] prints a short summary ("n=12 m=17 D=4"). *)
val pp : Format.formatter -> t -> unit
