(** Message schedulers for the abstract MAC layer.

    The model (Sec 2) makes all non-determinism live in the scheduler: when a
    node broadcasts, the scheduler picks a delivery time for every neighbor
    and an acknowledgment time, subject to the single fairness constraint
    that the ack arrives within [F_ack] of the broadcast, and to the model
    guarantee that every neighbor receives the message {e before} the ack.

    Each lower-bound proof in the paper names a concrete scheduler; those are
    provided here under the paper's names ([synchronous], Sec 3.2;
    [delayed_cut] generalising the semi-synchronous scheduler of Sec 3.3;
    [max_delay], Thm 3.10), alongside stochastic schedulers for the upper
    bound experiments. *)

(** The scheduler's answer for one broadcast: a receive time per neighbor and
    the ack time. The engine asserts, for every entry,
    [now < receive <= ack_at <= now + fack]. *)
type plan = {
  receives : (int * int) list;  (** (neighbor index, delivery time) *)
  ack_at : int;
}

type t = {
  name : string;
  fack : int;  (** the bound the engine asserts; unknown to algorithms *)
  plan : now:int -> sender:int -> neighbors:int list -> plan;
  unreliable_plan :
    (now:int -> sender:int -> candidates:int list -> ack_at:int ->
     (int * int) list)
    option;
      (** When the engine runs with an {e unreliable} second graph (some
          abstract MAC layer definitions include one — see Sec 2's remark;
          the paper's upper bounds leave it as an open question), this
          decides which unreliable neighbors of a broadcast also receive it
          and when (times must lie in [(now, ack_at\]]). [None] (the
          default) delivers on no unreliable edge, the adversary's
          prerogative. *)
  contention_stretch : (contention:int -> int) option;
      (** Interference-aware mode (the SINR-realization setting of
          Halldórsson–Holzer–Lynch, arXiv:1505.04514): when present, the
          engine measures the sender's {e local contention} — how many of
          its neighbors are mid-broadcast at the instant it transmits —
          and shifts every delivery and the ack of the plan by
          [contention_stretch ~contention] ticks. The base plan is still
          asserted against [fack] {e before} the shift, so the effective
          ack bound in this mode is [fack + stretch]: the MAC layer's
          ack guarantee degrades gracefully with channel load instead of
          being a load-independent constant. Must be non-negative, and 0
          at zero contention for the degenerate mode to coincide with the
          base scheduler. [None] (the default) is the paper's
          contention-free abstract MAC layer. *)
}

(** [make ~name ~fack plan] wraps an arbitrary planning function (with no
    unreliable-edge deliveries). *)
val make :
  name:string ->
  fack:int ->
  (now:int -> sender:int -> neighbors:int list -> plan) ->
  t

(** [interference ?name ?cap ~alpha t] attaches the linear contention
    stretch [min cap (alpha * contention)] to [t]: each concurrently
    transmitting neighbor of a sender delays its deliveries and ack by
    [alpha] further ticks, up to [cap] (default [4 * fack]). [alpha = 0]
    is the degenerate mode: the engine's contention tracking runs but
    every plan is byte-identical to [t]'s. [?name] overrides the derived
    ["<base>+sinr(a=..,cap=..)"] display name (labels in metrics snapshots
    follow it). @raise Invalid_argument if [alpha < 0] or [cap < 0]. *)
val interference : ?name:string -> ?cap:int -> alpha:int -> t -> t

(** [with_unreliable t ~plan] attaches an unreliable-edge delivery policy. *)
val with_unreliable :
  t ->
  plan:
    (now:int -> sender:int -> candidates:int list -> ack_at:int ->
     (int * int) list) ->
  t

(** {1 Recording and replay}

    The model checker's shrinker needs schedules as {e data}: [record] wraps
    any scheduler so that every plan it emits is captured as a [decision]
    (delays relative to the broadcast time, one decision per accepted
    broadcast, in broadcast order); [replay] turns a decision list back into
    a scheduler. Replaying an unmodified recording against the same
    deterministic algorithm reproduces the run event-for-event; the shrinker
    then mutates the list (lowering delays, truncating) and replays. *)

type decision = {
  ack_delay : int;  (** ack time minus broadcast time *)
  delays : (int * int) list;  (** (neighbor, delivery delay) *)
}

(** [record t] is [(t', recorded)]: [t'] plans exactly as [t] while
    appending each plan to an internal log; [recorded ()] returns the log so
    far, in broadcast order. *)
val record : t -> t * (unit -> decision list)

(** [replay decisions] consumes one decision per broadcast, in order. Replay
    is {e total}: delays are clamped into [(now, ack\]], neighbors missing
    from a decision receive at the ack, and once the list is exhausted every
    broadcast completes uniformly after [fallback_delay] (default 1) — so a
    decision list mutated by the shrinker, or applied to a smaller topology,
    is always a contract-respecting scheduler. [F_ack] is the largest ack
    delay in the list (at least [fallback_delay]).
    @raise Invalid_argument if [fallback_delay < 1]. *)
val replay : ?fallback_delay:int -> decision list -> t

(** [bernoulli_unreliable rng ~p t] delivers on each unreliable edge
    independently with probability [p], at a uniform time within the
    broadcast's window. @raise Invalid_argument unless [0 <= p <= 1]. *)
val bernoulli_unreliable : Rng.t -> p:float -> t -> t

(** The lock-step scheduler of Sec 3.2: every delivery and the ack land one
    tick after the broadcast, so executions advance in synchronous rounds.
    [F_ack = 1]. *)
val synchronous : t

(** [fixed ~delay] delivers and acks exactly [delay] ticks after the
    broadcast. [F_ack = delay]. *)
val fixed : delay:int -> t

(** [max_delay ~fack] always takes the full allowed delay — the Thm 3.10
    adversary. *)
val max_delay : fack:int -> t

(** [random rng ~fack] draws an ack delay uniformly from [\[1, fack\]] and
    each delivery uniformly from [\[1, ack delay\]]. Deterministic in
    [rng]. *)
val random : Rng.t -> fack:int -> t

(** [jittered rng ~fack ~spread] delivers around [fack/2] with +-[spread]
    jitter, modeling a moderately loaded CSMA channel. *)
val jittered : Rng.t -> fack:int -> spread:int -> t

(** [per_edge ~name ~fack ~delay] uses the static per-directed-edge delay
    [delay ~sender ~receiver] (clamped to [\[1, fack\]]); the ack lands with
    the slowest delivery. Useful for heterogeneous-link experiments. *)
val per_edge :
  name:string -> fack:int -> delay:(sender:int -> receiver:int -> int) -> t

(** [delayed_cut ~base_fack ~until ~cut] behaves like [fixed ~delay:1] except
    that deliveries on directed edges for which [cut ~sender ~receiver] holds
    are postponed to time [max (now + 1) until]. This is the paper's
    semi-synchronous scheduler (Sec 3.3) and the split scheduler of Sec 3.2:
    the adversary silences a frontier for a long prefix while both sides run
    synchronously. The resulting [fack] is [max base_fack (until + 1)] — the
    adversary chooses the (node-invisible) bound large enough to cover the
    silence. *)
val delayed_cut :
  base_fack:int -> until:int -> cut:(sender:int -> receiver:int -> bool) -> t

(** [bursty ~fack ~fast_len ~slow_len] alternates epochs: broadcasts issued
    during a fast epoch complete in one tick, those issued during a slow
    epoch take the full [fack] — a duty-cycled / periodically congested
    channel. @raise Invalid_argument if either epoch is shorter than a
    tick. *)
val bursty : fack:int -> fast_len:int -> slow_len:int -> t

(** [slow_node ~fack ~node] delivers everything at one tick except messages
    from [node], which take the full [fack]: a single straggler, the
    situation where PAXOS's majority-progress property matters (Sec 1). *)
val slow_node : fack:int -> node:int -> t
