type t = { adj : int list array }

let size t = Array.length t.adj

let validate_edge ~n (u, v) =
  if u < 0 || u >= n || v < 0 || v >= n then
    invalid_arg
      (Printf.sprintf "Topology: edge (%d,%d) out of range for n=%d" u v n);
  if u = v then
    invalid_arg (Printf.sprintf "Topology: self-loop at node %d" u)

let of_edges ~n edge_list =
  if n < 0 then invalid_arg "Topology.of_edges: negative n";
  let seen = Hashtbl.create (max 16 (List.length edge_list)) in
  let adj = Array.make n [] in
  let add (u, v) =
    validate_edge ~n (u, v);
    let key = (min u v, max u v) in
    if Hashtbl.mem seen key then
      invalid_arg
        (Printf.sprintf "Topology: duplicate edge (%d,%d)" (fst key) (snd key));
    Hashtbl.add seen key ();
    adj.(u) <- v :: adj.(u);
    adj.(v) <- u :: adj.(v)
  in
  List.iter add edge_list;
  Array.iteri (fun i l -> adj.(i) <- List.sort_uniq Int.compare l) adj;
  { adj }

let clique n =
  let edge_list = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edge_list := (u, v) :: !edge_list
    done
  done;
  of_edges ~n !edge_list

let line n =
  of_edges ~n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let ring n =
  if n < 3 then invalid_arg "Topology.ring: need n >= 3";
  of_edges ~n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let star n =
  if n < 1 then invalid_arg "Topology.star: need n >= 1";
  of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let grid ~width ~height =
  if width < 1 || height < 1 then invalid_arg "Topology.grid: empty dimension";
  let idx x y = (y * width) + x in
  let edge_list = ref [] in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      if x + 1 < width then edge_list := (idx x y, idx (x + 1) y) :: !edge_list;
      if y + 1 < height then edge_list := (idx x y, idx x (y + 1)) :: !edge_list
    done
  done;
  of_edges ~n:(width * height) !edge_list

let torus ~width ~height =
  if width < 3 || height < 3 then
    invalid_arg "Topology.torus: need width, height >= 3";
  let idx x y = (y * width) + x in
  let edge_list = ref [] in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      edge_list := (idx x y, idx ((x + 1) mod width) y) :: !edge_list;
      edge_list := (idx x y, idx x ((y + 1) mod height)) :: !edge_list
    done
  done;
  of_edges ~n:(width * height) !edge_list

let binary_tree n =
  let edge_list = ref [] in
  for i = 1 to n - 1 do
    edge_list := ((i - 1) / 2, i) :: !edge_list
  done;
  of_edges ~n !edge_list

let barbell ~clique_size =
  if clique_size < 1 then invalid_arg "Topology.barbell: need clique_size >= 1";
  let k = clique_size in
  let edge_list = ref [ (k - 1, k) ] in
  for u = 0 to k - 1 do
    for v = u + 1 to k - 1 do
      edge_list := (u, v) :: !edge_list;
      edge_list := (u + k, v + k) :: !edge_list
    done
  done;
  of_edges ~n:(2 * k) !edge_list

let star_of_lines ~arms ~arm_len =
  if arms < 1 || arm_len < 1 then
    invalid_arg "Topology.star_of_lines: need arms, arm_len >= 1";
  (* Node 0 is the hub; arm a occupies indices 1 + a*arm_len .. (a+1)*arm_len. *)
  let edge_list = ref [] in
  for a = 0 to arms - 1 do
    let base = 1 + (a * arm_len) in
    edge_list := (0, base) :: !edge_list;
    for i = 0 to arm_len - 2 do
      edge_list := (base + i, base + i + 1) :: !edge_list
    done
  done;
  of_edges ~n:(1 + (arms * arm_len)) !edge_list

let lollipop ~clique_size ~tail_len =
  if clique_size < 1 || tail_len < 0 then
    invalid_arg "Topology.lollipop: bad dimensions";
  let edge_list = ref [] in
  for u = 0 to clique_size - 1 do
    for v = u + 1 to clique_size - 1 do
      edge_list := (u, v) :: !edge_list
    done
  done;
  for i = 0 to tail_len - 1 do
    let prev = if i = 0 then 0 else clique_size + i - 1 in
    edge_list := (prev, clique_size + i) :: !edge_list
  done;
  of_edges ~n:(clique_size + tail_len) !edge_list

let random_connected rng ~n ~extra_edges =
  if n < 1 then invalid_arg "Topology.random_connected: need n >= 1";
  (* Random spanning tree: attach each node i >= 1 to a uniform earlier node
     of a random permutation, which samples a well-spread random tree. *)
  let perm = Array.init n (fun i -> i) in
  Rng.shuffle rng perm;
  let edge_list = ref [] in
  let present = Hashtbl.create (4 * n) in
  let add u v =
    let key = (min u v, max u v) in
    if u <> v && not (Hashtbl.mem present key) then begin
      Hashtbl.add present key ();
      edge_list := key :: !edge_list;
      true
    end
    else false
  in
  for i = 1 to n - 1 do
    let j = Rng.int rng i in
    ignore (add perm.(i) perm.(j))
  done;
  let added = ref 0 in
  let attempts = ref 0 in
  let max_attempts = 50 * (extra_edges + 1) in
  while !added < extra_edges && !attempts < max_attempts do
    incr attempts;
    if add (Rng.int rng n) (Rng.int rng n) then incr added
  done;
  of_edges ~n !edge_list

type delta = Add_edge of int * int | Remove_edge of int * int

let pp_delta fmt = function
  | Add_edge (u, v) -> Format.fprintf fmt "+(%d,%d)" u v
  | Remove_edge (u, v) -> Format.fprintf fmt "-(%d,%d)" u v

let copy t = { adj = Array.copy t.adj }

(* Neighbor lists are sorted increasing; insertion keeps them that way so
   a mutated topology is indistinguishable from one built by [of_edges]. *)
let rec insert_sorted v = function
  | [] -> [ v ]
  | x :: rest as l ->
      if v < x then v :: l
      else if v = x then invalid_arg "Topology: duplicate edge"
      else x :: insert_sorted v rest

let add_edge t u v =
  validate_edge ~n:(Array.length t.adj) (u, v);
  if List.mem v t.adj.(u) then
    invalid_arg (Printf.sprintf "Topology.add_edge: edge (%d,%d) exists" u v);
  t.adj.(u) <- insert_sorted v t.adj.(u);
  t.adj.(v) <- insert_sorted u t.adj.(v)

let remove_edge t u v =
  validate_edge ~n:(Array.length t.adj) (u, v);
  if not (List.mem v t.adj.(u)) then
    invalid_arg (Printf.sprintf "Topology.remove_edge: no edge (%d,%d)" u v);
  t.adj.(u) <- List.filter (fun w -> w <> v) t.adj.(u);
  t.adj.(v) <- List.filter (fun w -> w <> u) t.adj.(v)

let apply_delta t = function
  | Add_edge (u, v) -> add_edge t u v
  | Remove_edge (u, v) -> remove_edge t u v

let apply_deltas t deltas = List.iter (apply_delta t) deltas

let edges t =
  let acc = ref [] in
  Array.iteri
    (fun u ns -> List.iter (fun v -> if u < v then acc := (u, v) :: !acc) ns)
    t.adj;
  List.rev !acc

let disjoint_union a b =
  let shift = size a in
  let shifted = List.map (fun (u, v) -> (u + shift, v + shift)) (edges b) in
  of_edges ~n:(size a + size b) (edges a @ shifted)

let add_edges t extra = of_edges ~n:(size t) (edges t @ extra)

let neighbors t u = t.adj.(u)

let degree t u = List.length t.adj.(u)

let has_edge t u v = List.mem v t.adj.(u)

let num_edges t = List.length (edges t)

let bfs_dist t source =
  let n = size t in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  dist.(source) <- 0;
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let du = dist.(u) in
    let visit v =
      if dist.(v) = max_int then begin
        dist.(v) <- du + 1;
        Queue.add v queue
      end
    in
    List.iter visit t.adj.(u)
  done;
  dist

let is_connected t =
  size t <= 1 || Array.for_all (fun d -> d < max_int) (bfs_dist t 0)

let eccentricity t u =
  let dist = bfs_dist t u in
  Array.fold_left
    (fun acc d ->
      if d = max_int then
        invalid_arg "Topology.eccentricity: graph is disconnected"
      else max acc d)
    0 dist

let diameter t =
  let best = ref 0 in
  for u = 0 to size t - 1 do
    best := max !best (eccentricity t u)
  done;
  !best

let is_clique t =
  let n = size t in
  let rec check u = u >= n || (degree t u = n - 1 && check (u + 1)) in
  check 0

let pp fmt t =
  if is_connected t then
    Format.fprintf fmt "n=%d m=%d D=%d" (size t) (num_edges t) (diameter t)
  else Format.fprintf fmt "n=%d m=%d (disconnected)" (size t) (num_edges t)
