type outcome = {
  decisions : (int * int) option array;
  extra_decides : (int * int * int) list;
  crashed : bool array;
  incarnations : int array;
  broadcasts : int;
  deliveries : int;
  discarded : int;
  dropped : int;
  link_dropped : int;
  stuttered : int;
  suppressed : int;
  substituted : int;
  max_ids_per_message : int;
  unreliable_deliveries : int;
  injected : int;
  topo_changes : int;
  end_time : int;
  events_processed : int;
  hit_max_time : bool;
  causal : Causal.t option;
  provenance : Obs.Provenance.t option;
  trace : Trace.entry list;
}

let all_decided outcome =
  let ok = ref true in
  Array.iteri
    (fun i decision ->
      if (not outcome.crashed.(i)) && decision = None then ok := false)
    outcome.decisions;
  !ok

let decision_times outcome =
  let acc = ref [] in
  Array.iteri
    (fun i decision ->
      match decision with
      | Some (_, time) when not outcome.crashed.(i) -> acc := time :: !acc
      | Some _ | None -> ())
    outcome.decisions;
  List.rev !acc

let latest_decision outcome =
  match decision_times outcome with
  | [] -> None
  | times -> Some (List.fold_left max 0 times)

(* Event kinds, in processing-priority order at equal times: a crash takes
   effect before deliveries at the same tick (so "delivery at the crash
   instant" is lost, making crash-mid-broadcast expressible), a recovery
   right after any crash of the tick (schedule validation forbids a node
   crashing and recovering at the same instant), and all deliveries of a
   tick land before any ack of that tick (the model requires every neighbor
   to receive before the sender's ack).

   [Receive] and [Ack] are stamped with the incarnation of the nodes they
   concern at scheduling time: a recovery invalidates everything in flight
   to or from the previous incarnation, so stale events are recognised and
   dropped when popped. *)
type 'm event =
  | Crash of { node : int }
  | Recover of { node : int }
  | Receive of {
      node : int;
      receiver_inc : int;
      sender : int;
      sender_inc : int;
      msg : 'm;
      influence : Bitset.t option;
      cause : int;
          (* provenance vertex id of the broadcast; -1 when tracking is off *)
    }
  | Ack of { node : int; inc : int; cause : int }
  | Inject of { node : int; payload : int }
      (* external input (a client submit) handed to [on_inject]; carries no
         incarnation — it targets whichever incarnation is up at pop time,
         and is lost if the node is down. *)
  | Topo of { delta : Topology.delta }
      (* churn/mobility: an edge delta applied in place to the engine's
         private topology copy. Priority 5 slots after every pre-existing
         kind, so runs without deltas keep their exact event order. *)

let kind_priority = function
  | Crash _ -> 0
  | Recover _ -> 1
  | Receive _ -> 2
  | Ack _ -> 3
  | Inject _ -> 4
  | Topo _ -> 5

(* Event-queue keys encode (time, kind priority); Pqueue breaks remaining
   ties by insertion order, making runs bit-for-bit deterministic. *)
let key_of ~time event = (time * 8) + kind_priority event

let time_of_key key = key / 8

(* The engine's metrics instruments, registered once per run in a caller
   supplied [Obs.Metrics] registry. Every instrument is labelled with the
   algorithm and scheduler names; the per-node broadcast counters add a
   [node] label. All updates are O(1) int/float bumps on the hot path. *)
type instruments = {
  events_total : Obs.Metrics.counter;
  deliveries_total : Obs.Metrics.counter;
  acks_total : Obs.Metrics.counter;
  drops_stale : Obs.Metrics.counter;  (* crash/incarnation-cancelled *)
  drops_link : Obs.Metrics.counter;  (* eaten by the [drop] fault hook *)
  discards_total : Obs.Metrics.counter;
  stutters_total : Obs.Metrics.counter;
  crashes_total : Obs.Metrics.counter;
  recoveries_total : Obs.Metrics.counter;
  unreliable_total : Obs.Metrics.counter;
  broadcasts_by_node : Obs.Metrics.counter array;
  pqueue_depth_max : Obs.Metrics.gauge;
  end_time_gauge : Obs.Metrics.gauge;
  ack_latency : Obs.Metrics.histogram;
  decide_latency : Obs.Metrics.histogram;
  (* Per-node variants of the two latency histograms (same metric name, a
     [node] label added), so leader and follower distributions separate in
     snapshots — the global, unlabelled pair keeps its aggregate view. *)
  ack_latency_by_node : Obs.Metrics.histogram array;
  decide_latency_by_node : Obs.Metrics.histogram array;
}

let make_instruments reg ~algorithm ~scheduler ~n =
  let labels = [ ("algorithm", algorithm); ("scheduler", scheduler) ] in
  let counter name = Obs.Metrics.counter reg ~labels name in
  {
    events_total = counter "engine_events_total";
    deliveries_total = counter "engine_deliveries_total";
    acks_total = counter "engine_acks_total";
    drops_stale =
      Obs.Metrics.counter reg
        ~labels:(("reason", "stale") :: labels)
        "engine_drops_total";
    drops_link =
      Obs.Metrics.counter reg
        ~labels:(("reason", "link") :: labels)
        "engine_drops_total";
    discards_total = counter "engine_discards_total";
    stutters_total = counter "engine_stutters_total";
    crashes_total = counter "engine_crashes_total";
    recoveries_total = counter "engine_recoveries_total";
    unreliable_total = counter "engine_unreliable_deliveries_total";
    broadcasts_by_node =
      Array.init n (fun i ->
          Obs.Metrics.counter reg
            ~labels:(("node", string_of_int i) :: labels)
            "engine_broadcasts_total");
    pqueue_depth_max = Obs.Metrics.gauge reg ~labels "engine_pqueue_depth_max";
    end_time_gauge = Obs.Metrics.gauge reg ~labels "engine_end_time";
    ack_latency = Obs.Metrics.histogram reg ~labels "engine_ack_latency_ticks";
    decide_latency =
      Obs.Metrics.histogram reg ~labels "engine_decide_latency_ticks";
    ack_latency_by_node =
      Array.init n (fun i ->
          Obs.Metrics.histogram reg
            ~labels:(("node", string_of_int i) :: labels)
            "engine_ack_latency_ticks");
    decide_latency_by_node =
      Array.init n (fun i ->
          Obs.Metrics.histogram reg
            ~labels:(("node", string_of_int i) :: labels)
            "engine_decide_latency_ticks");
  }

(* Interference-mode instruments, registered only when the scheduler
   carries a [contention_stretch] hook: runs in the contention-free model
   must keep byte-identical metrics snapshots, so these families never
   exist there. One contention observation and one stretch observation per
   accepted broadcast; per-node stretch histograms separate hot spots. *)
type contention_instruments = {
  contention_hist : Obs.Metrics.histogram;
  contention_max : Obs.Metrics.gauge;
  stretch_hist : Obs.Metrics.histogram;
  stretch_by_node : Obs.Metrics.histogram array;
}

let make_contention_instruments reg ~algorithm ~scheduler ~n =
  let labels = [ ("algorithm", algorithm); ("scheduler", scheduler) ] in
  {
    contention_hist =
      Obs.Metrics.histogram reg ~labels "engine_contention_neighbors";
    contention_max = Obs.Metrics.gauge reg ~labels "engine_contention_max";
    stretch_hist =
      Obs.Metrics.histogram reg ~labels "engine_ack_stretch_ticks";
    stretch_by_node =
      Array.init n (fun i ->
          Obs.Metrics.histogram reg
            ~labels:(("node", string_of_int i) :: labels)
            "engine_ack_stretch_ticks");
  }

(* A resumable simulation: all the run state, advanced one event per [step].
   [run] drains it in a loop; the model checker uses [step] directly to
   interleave execution with budget checks and state observation. *)
type ('s, 'm) sim = {
  algorithm : ('s, 'm) Algorithm.t;
  topology : Topology.t;
  scheduler : Scheduler.t;
  unreliable : Topology.t option;
  render_msg : 'm -> string;
  max_time : int;
  stop_when_all_decided : bool;
  record_trace : bool;
  drop : (now:int -> sender:int -> receiver:int -> bool) option;
  stutter : (now:int -> node:int -> bool) option;
  substitute : (now:int -> sender:int -> receiver:int -> 'm -> 'm option) option;
  on_inject :
    (now:int -> payload:int -> Algorithm.ctx -> 's -> 'm Algorithm.action list)
    option;
  clock : int ref option;  (* mirrors the current event time, for callbacks *)
  queue : 'm event Pqueue.t;
  states : 's array;
  ctxs : Algorithm.ctx array;
  causal : Causal.t option;
  prov : Obs.Provenance.t option;
  last_info : int array;
      (* per node, the vertex id of its latest *informational* event (Boot,
         Inject or Deliver) — the Lamport-style predecessor any Broadcast or
         Decide the node emits is attributed to. Attributing to information
         rather than to the literal triggering event (often the Ack that
         drained an algorithm-side send queue) keeps critical paths tracking
         message relays across nodes; the serialization wait surfaces as
         latency on the info->Broadcast edge instead. All -1 when [prov] is
         off. *)
  crashed : bool array;
  crash_time : int array;
  incarnation : int array;
  busy : bool array;
  busy_since : int array;  (* broadcast start time while busy; for ack latency *)
  plan_scratch : bool array;
      (* preallocated per-node marks for scheduler-plan validation: the
         neighbor set is marked and consumed in O(degree) per broadcast
         instead of allocating and sorting a receiver list each time *)
  track_contention : bool;
      (* = the scheduler carries [contention_stretch]; gates all
         interference bookkeeping so contention-free runs execute the
         exact pre-existing hot path *)
  on_air : bool array;
      (* node currently counted as transmitting for contention purposes:
         set at broadcast accept, cleared at the ack — or at a crash, a
         dead radio stops jamming its neighborhood *)
  air_neighbors : int array;
      (* per node, how many of its *current* neighbors are on air — the
         local contention read in O(1) at each broadcast. Maintained
         incrementally (O(degree) per transmission start/end, and
         adjusted by topology deltas), never by scanning. *)
  obs : instruments option;
  cobs : contention_instruments option;
  decisions : (int * int) option array;
  mutable extra_decides : (int * int * int) list;  (* newest first *)
  mutable broadcasts : int;
  mutable deliveries : int;
  mutable discarded : int;
  mutable dropped : int;
  mutable link_dropped : int;
  mutable stuttered : int;
  mutable suppressed : int;
  mutable substituted : int;
  mutable max_ids : int;
  mutable unreliable_deliveries : int;
  mutable injected : int;
  mutable topo_changes : int;
  mutable events_processed : int;
  mutable end_time : int;
  mutable hit_max_time : bool;
  mutable trace : Trace.entry list;  (* newest first *)
  mutable live_undecided : int;
  mutable stopped : bool;
}

let log sim entry = if sim.record_trace then sim.trace <- entry :: sim.trace

let obs_counter sim pick =
  match sim.obs with Some i -> Obs.Metrics.inc (pick i) | None -> ()

let obs_hist sim pick v =
  match sim.obs with
  | Some i -> Obs.Metrics.observe (pick i) (float_of_int v)
  | None -> ()

(* Append a provenance vertex. Purely observational: no recording ever
   changes scheduling, handler inputs or the trace-entry sequence, so the
   determinism contract is unaffected by whether a DAG is being collected. *)
let prov_record sim ~kind ~node ~time ~cause =
  match sim.prov with
  | Some p -> Obs.Provenance.record p ~kind ~node ~time ~cause
  | None -> -1

(* Append a root vertex (Boot/Inject) and make it the node's latest
   informational event. *)
let prov_root sim ~kind ~node ~time =
  if sim.prov <> None then
    sim.last_info.(node) <- prov_record sim ~kind ~node ~time ~cause:(-1)

(* End of a transmission for contention purposes: the ack arrived, or the
   sender crashed mid-broadcast (a dead radio stops loading the channel;
   its already-scheduled deliveries at or after the crash are dropped by
   the stale-sender check anyway). Decrementing over the *current* neighbor
   set is exact even under topology deltas, because delta application
   adjusts [air_neighbors] for on-air endpoints (see the [Topo] case). *)
let end_transmission sim node =
  if sim.track_contention && sim.on_air.(node) then begin
    sim.on_air.(node) <- false;
    List.iter
      (fun w -> sim.air_neighbors.(w) <- sim.air_neighbors.(w) - 1)
      (Topology.neighbors sim.topology node)
  end

let do_broadcast ~now sim sender msg =
  if sim.busy.(sender) then begin
    sim.discarded <- sim.discarded + 1;
    obs_counter sim (fun i -> i.discards_total);
    if sim.record_trace then
      log sim
        (Trace.Discarded { time = now; node = sender; msg = sim.render_msg msg })
  end
  else begin
    sim.busy.(sender) <- true;
    sim.busy_since.(sender) <- now;
    sim.broadcasts <- sim.broadcasts + 1;
    obs_counter sim (fun i -> i.broadcasts_by_node.(sender));
    let ids = sim.algorithm.msg_ids msg in
    if ids > sim.max_ids then sim.max_ids <- ids;
    (* Discarded broadcasts (the busy branch above) get no vertex: the MAC
       layer never accepted them, so nothing downstream can be caused by
       one. An accepted one is caused by the sender's latest informational
       event — what its content can depend on. *)
    let bid =
      prov_record sim ~kind:Obs.Provenance.Broadcast ~node:sender ~time:now
        ~cause:sim.last_info.(sender)
    in
    if sim.record_trace then
      log sim
        (Trace.Broadcast_start
           { time = now; node = sender; ids; msg = sim.render_msg msg });
    let neighbors = Topology.neighbors sim.topology sender in
    (* Interference mode: read the sender's local contention (its own
       transmission excluded — it starts only below), derive the stretch,
       then mark the sender on air so concurrent neighbors see it. *)
    let stretch =
      if not sim.track_contention then 0
      else begin
        let contention = sim.air_neighbors.(sender) in
        let s =
          match sim.scheduler.Scheduler.contention_stretch with
          | Some f -> f ~contention
          | None -> 0
        in
        if s < 0 then
          invalid_arg "Engine.run: contention stretch must be >= 0";
        (match sim.cobs with
        | Some ci ->
            Obs.Metrics.observe ci.contention_hist (float_of_int contention);
            Obs.Metrics.observe_max ci.contention_max
              (float_of_int contention);
            Obs.Metrics.observe ci.stretch_hist (float_of_int s);
            Obs.Metrics.observe ci.stretch_by_node.(sender) (float_of_int s)
        | None -> ());
        sim.on_air.(sender) <- true;
        List.iter
          (fun w -> sim.air_neighbors.(w) <- sim.air_neighbors.(w) + 1)
          neighbors;
        s
      end
    in
    let plan = sim.scheduler.Scheduler.plan ~now ~sender ~neighbors in
    (* Assert the scheduler respects the MAC layer contract. The base plan
       is checked against F_ack *before* any contention stretch: in
       interference mode the effective bound is F_ack + stretch. *)
    if plan.Scheduler.ack_at > now + sim.scheduler.Scheduler.fack then
      invalid_arg
        (Printf.sprintf
           "Engine.run: scheduler %s acked at %d for broadcast at %d \
            (F_ack=%d)"
           sim.scheduler.Scheduler.name plan.Scheduler.ack_at now
           sim.scheduler.Scheduler.fack);
    if plan.Scheduler.ack_at <= now then
      invalid_arg "Engine.run: ack must be strictly after the broadcast";
    let plan =
      if stretch = 0 then plan
      else
        {
          Scheduler.receives =
            List.map (fun (v, t) -> (v, t + stretch)) plan.Scheduler.receives;
          ack_at = plan.Scheduler.ack_at + stretch;
        }
    in
    (* Set-equality check against the neighbor set over the preallocated
       scratch marks: mark every neighbor, consume one mark per planned
       delivery. Duplicates and non-neighbors hit an unmarked slot, a
       missing neighbor leaves the consumed count short — O(degree) with
       no per-broadcast list or sort allocation. *)
    let marked =
      List.fold_left
        (fun acc v ->
          sim.plan_scratch.(v) <- true;
          acc + 1)
        0 neighbors
    in
    let consumed =
      List.fold_left
        (fun acc (receiver, _) ->
          if
            receiver < 0
            || receiver >= Array.length sim.plan_scratch
            || not sim.plan_scratch.(receiver)
          then
            invalid_arg
              "Engine.run: scheduler must deliver to exactly the neighbor set";
          sim.plan_scratch.(receiver) <- false;
          acc + 1)
        0 plan.Scheduler.receives
    in
    if consumed <> marked then begin
      List.iter (fun v -> sim.plan_scratch.(v) <- false) neighbors;
      invalid_arg
        "Engine.run: scheduler must deliver to exactly the neighbor set"
    end;
    let influence =
      match sim.causal with
      | Some c -> Some (Causal.snapshot c sender)
      | None -> None
    in
    let deliver (receiver, time) =
      if time <= now || time > plan.Scheduler.ack_at then
        invalid_arg
          (Printf.sprintf
             "Engine.run: delivery time %d outside (broadcast %d, ack %d]"
             time now plan.Scheduler.ack_at);
      let event =
        Receive
          {
            node = receiver;
            receiver_inc = sim.incarnation.(receiver);
            sender;
            sender_inc = sim.incarnation.(sender);
            msg;
            influence;
            cause = bid;
          }
      in
      Pqueue.add sim.queue ~key:(key_of ~time event) event
    in
    List.iter deliver plan.Scheduler.receives;
    (* Unreliable edges: the scheduler may additionally deliver to any
       subset of the sender's unreliable neighbors, at any time within
       the broadcast window. These deliveries never gate the ack. *)
    (match (sim.unreliable, sim.scheduler.Scheduler.unreliable_plan) with
    | Some extra, Some unreliable_plan ->
        let candidates = Topology.neighbors extra sender in
        if candidates <> [] then begin
          let chosen =
            unreliable_plan ~now ~sender ~candidates
              ~ack_at:plan.Scheduler.ack_at
          in
          (* Candidate membership via the scratch marks (marks are not
             consumed: the plan may legitimately deliver twice to one
             candidate), so validating the chosen list is O(candidates +
             chosen) instead of the quadratic List.mem scan the 1000-node
             allocation audit flagged. *)
          List.iter (fun v -> sim.plan_scratch.(v) <- true) candidates;
          (try
             List.iter
               (fun (receiver, time) ->
                 if
                   receiver < 0
                   || receiver >= Array.length sim.plan_scratch
                   || not sim.plan_scratch.(receiver)
                 then
                   invalid_arg
                     "Engine.run: unreliable delivery to a non-candidate";
                 deliver (receiver, time);
                 sim.unreliable_deliveries <- sim.unreliable_deliveries + 1;
                 obs_counter sim (fun i -> i.unreliable_total))
               chosen
           with e ->
             List.iter (fun v -> sim.plan_scratch.(v) <- false) candidates;
             raise e);
          List.iter (fun v -> sim.plan_scratch.(v) <- false) candidates
        end
    | None, _ | _, None -> ());
    let ack = Ack { node = sender; inc = sim.incarnation.(sender); cause = bid } in
    Pqueue.add sim.queue ~key:(key_of ~time:plan.Scheduler.ack_at ack) ack
  end

let handle_decide ~now sim node value =
  match sim.decisions.(node) with
  | None ->
      sim.decisions.(node) <- Some (value, now);
      sim.live_undecided <- sim.live_undecided - 1;
      obs_hist sim (fun i -> i.decide_latency) now;
      obs_hist sim (fun i -> i.decide_latency_by_node.(node)) now;
      ignore
        (prov_record sim
           ~kind:(Obs.Provenance.Decide { value })
           ~node ~time:now ~cause:sim.last_info.(node));
      log sim (Trace.Decided { time = now; node; value })
  | Some (prior, _) ->
      if prior <> value then
        sim.extra_decides <- (node, value, now) :: sim.extra_decides

let rec apply_actions ~now sim node actions =
  match actions with
  | [] -> ()
  | Algorithm.Decide value :: rest ->
      handle_decide ~now sim node value;
      apply_actions ~now sim node rest
  | Algorithm.Broadcast msg :: rest ->
      do_broadcast ~now sim node msg;
      apply_actions ~now sim node rest

(* Fault-aware action application: inside a stutter window the node's
   handlers still run (it receives and its state evolves) but the actions
   they return are suppressed — the node takes no externally visible
   steps. *)
let apply_actions_faulted ~now sim node actions =
  let stuttering =
    match sim.stutter with Some f -> f ~now ~node | None -> false
  in
  if stuttering then begin
    let count = List.length actions in
    if count > 0 then begin
      sim.stuttered <- sim.stuttered + count;
      (match sim.obs with
      | Some i -> Obs.Metrics.add i.stutters_total count
      | None -> ());
      log sim (Trace.Stuttered { time = now; node; actions = count })
    end
  end
  else apply_actions ~now sim node actions

(* Crash/recovery schedules must describe a consistent per-node lifetime:
   alternating crash < recover < crash < ... with strictly increasing times.
   Anything else (duplicate crash of the same incarnation, recovery of a
   node that never crashed, a recovery at or before its crash) is a
   malformed fault plan and is rejected up front rather than silently
   reinterpreted. *)
let validate_fault_schedule ~n ~crashes ~recoveries =
  let check what (node, time) =
    if node < 0 || node >= n then
      invalid_arg
        (Printf.sprintf "Engine.run: %s node %d out of range [0,%d)" what node
           n);
    if time < 0 then
      invalid_arg
        (Printf.sprintf "Engine.run: negative %s time for node %d" what node)
  in
  List.iter (check "crash") crashes;
  List.iter (check "recovery") recoveries;
  (* Bucket the schedule per node in one pass: the per-node filter this
     replaces rescanned the full crash and recovery lists n times — an
     O(n * faults) = O(n^2) wall at 1000 nodes under dense fault plans.
     Prepend-then-reverse keeps each bucket in input order (crashes before
     recoveries), and the sort is stable, so tie handling and error
     messages are unchanged. *)
  let buckets = Array.make n [] in
  List.iter
    (fun (node, time) -> buckets.(node) <- (time, `Crash) :: buckets.(node))
    crashes;
  List.iter
    (fun (node, time) -> buckets.(node) <- (time, `Recover) :: buckets.(node))
    recoveries;
  for node = 0 to n - 1 do
    let events =
      List.sort
        (fun (ta, _) (tb, _) -> Int.compare ta tb)
        (List.rev buckets.(node))
    in
    let rec walk state last = function
      | [] -> ()
      | (time, kind) :: rest -> (
          if last = Some time then
            invalid_arg
              (Printf.sprintf
                 "Engine.run: node %d has two fault events at t=%d" node time);
          match (state, kind) with
          | `Up, `Crash -> walk `Down (Some time) rest
          | `Down, `Recover -> walk `Up (Some time) rest
          | `Down, `Crash ->
              invalid_arg
                (Printf.sprintf
                   "Engine.run: duplicate crash of node %d at t=%d (same \
                    incarnation crashed twice, no recovery between)"
                   node time)
          | `Up, `Recover ->
              invalid_arg
                (Printf.sprintf
                   "Engine.run: recovery of node %d at t=%d without a \
                    preceding crash"
                   node time))
    in
    walk `Up None events
  done

let create ?identities ?(give_n = true) ?(give_diameter = false)
    ?(crashes = []) ?(recoveries = []) ?drop ?stutter ?substitute
    ?(injections = []) ?on_inject ?(topo_deltas = []) ?clock
    ?(max_time = 1_000_000) ?(stop_when_all_decided = true)
    ?(track_causal = false) ?provenance ?(record_trace = false) ?pp_msg
    ?unreliable ?obs (algorithm : ('s, 'm) Algorithm.t) ~topology ~scheduler
    ~inputs =
  let n = Topology.size topology in
  (* Deltas mutate the graph in place; the engine works on a private copy
     so the caller's topology (and any sibling run sharing it) is never
     changed under them. ctx.degree and ctx.diameter snapshot the initial
     graph — churn is invisible to algorithms except through traffic. *)
  let topology =
    if topo_deltas = [] then topology else Topology.copy topology
  in
  List.iter
    (fun (time, _delta) ->
      if time < 0 then
        invalid_arg "Engine.run: negative topology delta time")
    topo_deltas;
  if Array.length inputs <> n then
    invalid_arg "Engine.run: inputs length mismatches topology size";
  (match unreliable with
  | None -> ()
  | Some extra ->
      if Topology.size extra <> n then
        invalid_arg "Engine.run: unreliable graph size mismatches topology";
      List.iter
        (fun (u, v) ->
          if Topology.has_edge topology u v then
            invalid_arg
              (Printf.sprintf
                 "Engine.run: edge (%d,%d) is both reliable and unreliable" u
                 v))
        (Topology.edges extra));
  let identities =
    match identities with
    | Some ids ->
        if Array.length ids <> n then
          invalid_arg "Engine.run: identities length mismatches topology size";
        ids
    | None -> Node_id.identity_assignment ~n ~kind:`Dense
  in
  let render_msg =
    match pp_msg with Some f -> f | None -> fun _ -> "<msg>"
  in
  let ctxs =
    Array.init n (fun i ->
        {
          Algorithm.id = identities.(i);
          n = (if give_n then Some n else None);
          diameter =
            (if give_diameter then Some (Topology.diameter topology) else None);
          degree = Topology.degree topology i;
          input = inputs.(i);
        })
  in
  let causal = if track_causal then Some (Causal.create ~n) else None in
  validate_fault_schedule ~n ~crashes ~recoveries;
  List.iter
    (fun (node, time, _payload) ->
      if node < 0 || node >= n then
        invalid_arg
          (Printf.sprintf "Engine.run: injection node %d out of range [0,%d)"
             node n);
      if time < 0 then
        invalid_arg
          (Printf.sprintf "Engine.run: negative injection time for node %d"
             node))
    injections;
  let queue : 'm event Pqueue.t =
    Pqueue.of_list
      (List.map
         (fun (node, time) -> (key_of ~time (Crash { node }), Crash { node }))
         crashes
      @ List.map
          (fun (node, time) ->
            (key_of ~time (Recover { node }), Recover { node }))
          recoveries
      @ List.map
          (fun (node, time, payload) ->
            (key_of ~time (Inject { node; payload }), Inject { node; payload }))
          injections
      @ List.map
          (fun (time, delta) ->
            (key_of ~time (Topo { delta }), Topo { delta }))
          topo_deltas)
  in
  let track_contention = scheduler.Scheduler.contention_stretch <> None in
  let sim =
    {
      algorithm;
      topology;
      scheduler;
      unreliable;
      render_msg;
      max_time;
      stop_when_all_decided;
      record_trace;
      drop;
      stutter;
      substitute;
      on_inject;
      clock;
      queue;
      states = [||];
      ctxs;
      causal;
      prov = provenance;
      last_info = Array.make n (-1);
      crashed = Array.make n false;
      crash_time = Array.make n max_int;
      incarnation = Array.make n 0;
      busy = Array.make n false;
      busy_since = Array.make n 0;
      plan_scratch = Array.make n false;
      track_contention;
      on_air = Array.make (if track_contention then n else 0) false;
      air_neighbors = Array.make (if track_contention then n else 0) 0;
      obs =
        (match obs with
        | Some reg ->
            Some
              (make_instruments reg ~algorithm:algorithm.Algorithm.name
                 ~scheduler:scheduler.Scheduler.name ~n)
        | None -> None);
      cobs =
        (match obs with
        | Some reg when track_contention ->
            Some
              (make_contention_instruments reg
                 ~algorithm:algorithm.Algorithm.name
                 ~scheduler:scheduler.Scheduler.name ~n)
        | Some _ | None -> None);
      decisions = Array.make n None;
      extra_decides = [];
      broadcasts = 0;
      deliveries = 0;
      discarded = 0;
      dropped = 0;
      link_dropped = 0;
      stuttered = 0;
      suppressed = 0;
      substituted = 0;
      max_ids = 0;
      unreliable_deliveries = 0;
      injected = 0;
      topo_changes = 0;
      events_processed = 0;
      end_time = 0;
      hit_max_time = false;
      trace = [];
      live_undecided = n;
      stopped = false;
    }
  in
  (match clock with Some r -> r := 0 | None -> ());
  (* Initialise every node at time 0, in index order, interleaving each
     node's init with its first actions (scheduler plan calls must stay in
     node order for stateful schedulers). Init actions never read [states],
     so the placeholder array is safe; all mutations land before the
     functional update below copies the field values. *)
  let states =
    Array.init n (fun i ->
        prov_root sim
          ~kind:(Obs.Provenance.Boot { incarnation = 0 })
          ~node:i ~time:0;
        let state, actions = algorithm.init ctxs.(i) in
        apply_actions_faulted ~now:0 sim i actions;
        state)
  in
  { sim with states }

let step sim =
  if sim.stopped then `Done
  else if Pqueue.is_empty sim.queue then begin
    sim.stopped <- true;
    `Done
  end
  else begin
    (match sim.obs with
    | Some i ->
        Obs.Metrics.observe_max i.pqueue_depth_max
          (float_of_int (Pqueue.length sim.queue))
    | None -> ());
    let key, event = Pqueue.pop sim.queue in
    let now = time_of_key key in
    if now > sim.max_time then begin
      sim.hit_max_time <- true;
      sim.stopped <- true;
      `Capped
    end
    else begin
      sim.events_processed <- sim.events_processed + 1;
      obs_counter sim (fun i -> i.events_total);
      sim.end_time <- now;
      (match sim.clock with Some r -> r := now | None -> ());
      (match sim.obs with
      | Some i -> Obs.Metrics.set i.end_time_gauge (float_of_int now)
      | None -> ());
      (match event with
      | Crash { node } ->
          if not sim.crashed.(node) then begin
            end_transmission sim node;
            sim.crashed.(node) <- true;
            sim.crash_time.(node) <- now;
            if sim.decisions.(node) = None then
              sim.live_undecided <- sim.live_undecided - 1;
            obs_counter sim (fun i -> i.crashes_total);
            log sim (Trace.Crashed { time = now; node })
          end
      | Recover { node } ->
          if sim.crashed.(node) then begin
            (* Amnesiac restart: fresh state, a new incarnation number (so
               anything still in flight to or from the old incarnation is
               recognised as stale), and [init] runs again as if the node
               just booted. Prior decisions stay in [decisions] — the
               checker treats a decide as irrevocable, so a recovered node
               re-deciding differently surfaces as an extra_decide. *)
            sim.crashed.(node) <- false;
            sim.crash_time.(node) <- max_int;
            sim.incarnation.(node) <- sim.incarnation.(node) + 1;
            sim.busy.(node) <- false;
            if sim.decisions.(node) = None then
              sim.live_undecided <- sim.live_undecided + 1;
            obs_counter sim (fun i -> i.recoveries_total);
            log sim
              (Trace.Recovered
                 { time = now; node; incarnation = sim.incarnation.(node) });
            (* The reborn incarnation's [init] is a fresh causal root: its
               amnesiac state owes nothing to pre-crash events. *)
            prov_root sim
              ~kind:
                (Obs.Provenance.Boot { incarnation = sim.incarnation.(node) })
              ~node ~time:now;
            let state, actions = sim.algorithm.init sim.ctxs.(node) in
            sim.states.(node) <- state;
            apply_actions_faulted ~now sim node actions
          end
      | Receive { node; receiver_inc; sender; sender_inc; msg; influence; cause }
        ->
          if sim.crashed.(node) || receiver_inc <> sim.incarnation.(node) then begin
            sim.dropped <- sim.dropped + 1;
            obs_counter sim (fun i -> i.drops_stale)
          end
          else if
            sim.crash_time.(sender) <= now
            || sender_inc <> sim.incarnation.(sender)
          then begin
            (* The sender crashed mid-broadcast before this delivery (or
               has since restarted as a new incarnation). *)
            sim.dropped <- sim.dropped + 1;
            obs_counter sim (fun i -> i.drops_stale)
          end
          else if
            match sim.drop with
            | Some f -> f ~now ~sender ~receiver:node
            | None -> false
          then begin
            sim.link_dropped <- sim.link_dropped + 1;
            obs_counter sim (fun i -> i.drops_link);
            log sim (Trace.Link_dropped { time = now; node; sender })
          end
          else begin
            (* Adversary hook: a Byzantine sender's payload may differ per
               recipient ([Some msg'], equivocation/forgery — physical
               inequality is what counts as tampering, so an identity
               substitution stays invisible) or never arrive at all ([None],
               selective silence). Honest traffic passes through untouched.
               The sender's ack is never affected: the MAC layer kept its
               contract; the *transmitter* lied. *)
            let delivered =
              match sim.substitute with
              | None -> Some msg
              | Some f -> f ~now ~sender ~receiver:node msg
            in
            match delivered with
            | None ->
                sim.suppressed <- sim.suppressed + 1;
                log sim (Trace.Suppressed { time = now; node; sender })
            | Some msg' ->
                if not (msg' == msg) then begin
                  sim.substituted <- sim.substituted + 1;
                  if sim.record_trace then
                    log sim
                      (Trace.Substituted
                         {
                           time = now;
                           node;
                           sender;
                           msg = sim.render_msg msg';
                         })
                end;
                sim.deliveries <- sim.deliveries + 1;
                obs_counter sim (fun i -> i.deliveries_total);
                (match (sim.causal, influence) with
                | Some c, Some inf -> Causal.absorb c ~node ~time:now inf
                | Some _, None | None, _ -> ());
                (* The Deliver vertex is caused by the broadcast that put it
                   on the wire, and becomes the receiver's latest
                   informational event. The trace entry carries the
                   *broadcast's* vertex id: what caused this delivery. *)
                (if sim.prov <> None then
                   let did =
                     prov_record sim
                       ~kind:(Obs.Provenance.Deliver { sender })
                       ~node ~time:now ~cause
                   in
                   sim.last_info.(node) <- did);
                if sim.record_trace then
                  log sim
                    (Trace.Delivered
                       {
                         time = now;
                         node;
                         sender;
                         msg = sim.render_msg msg';
                         cause;
                       });
                let actions =
                  sim.algorithm.on_receive sim.ctxs.(node) sim.states.(node)
                    msg'
                in
                apply_actions_faulted ~now sim node actions
          end
      | Ack { node; inc; cause } ->
          if (not sim.crashed.(node)) && inc = sim.incarnation.(node) then begin
            end_transmission sim node;
            sim.busy.(node) <- false;
            obs_counter sim (fun i -> i.acks_total);
            obs_hist sim (fun i -> i.ack_latency) (now - sim.busy_since.(node));
            obs_hist sim
              (fun i -> i.ack_latency_by_node.(node))
              (now - sim.busy_since.(node));
            ignore
              (prov_record sim ~kind:Obs.Provenance.Ack ~node ~time:now ~cause);
            if sim.record_trace then log sim (Trace.Acked { time = now; node });
            let actions = sim.algorithm.on_ack sim.ctxs.(node) sim.states.(node) in
            apply_actions_faulted ~now sim node actions
          end
      | Inject { node; payload } ->
          (* Lost (not buffered) if the node is down — clients of a crashed
             replica get no service; with no [on_inject] handler the event
             is inert. *)
          if sim.crashed.(node) then begin
            sim.dropped <- sim.dropped + 1;
            obs_counter sim (fun i -> i.drops_stale)
          end
          else begin
            match sim.on_inject with
            | None -> ()
            | Some f ->
                sim.injected <- sim.injected + 1;
                prov_root sim
                  ~kind:(Obs.Provenance.Inject { payload })
                  ~node ~time:now;
                let actions =
                  f ~now ~payload sim.ctxs.(node) sim.states.(node)
                in
                apply_actions_faulted ~now sim node actions
          end
      | Topo { delta } ->
          (* Keep the air_neighbors invariant exact under mutation: an
             endpoint already on air starts (or stops) loading the other
             endpoint the instant the edge appears (or vanishes). In-flight
             deliveries over a removed edge still land — the message was
             already on the wire. *)
          Topology.apply_delta sim.topology delta;
          (if sim.track_contention then
             match delta with
             | Topology.Add_edge (u, v) ->
                 if sim.on_air.(u) then
                   sim.air_neighbors.(v) <- sim.air_neighbors.(v) + 1;
                 if sim.on_air.(v) then
                   sim.air_neighbors.(u) <- sim.air_neighbors.(u) + 1
             | Topology.Remove_edge (u, v) ->
                 if sim.on_air.(u) then
                   sim.air_neighbors.(v) <- sim.air_neighbors.(v) - 1;
                 if sim.on_air.(v) then
                   sim.air_neighbors.(u) <- sim.air_neighbors.(u) - 1);
          sim.topo_changes <- sim.topo_changes + 1);
      if sim.stop_when_all_decided && sim.live_undecided = 0 then
        sim.stopped <- true;
      `Stepped
    end
  end

let finished sim = sim.stopped || Pqueue.is_empty sim.queue

let now sim = sim.end_time

let snapshot sim =
  {
    decisions = Array.copy sim.decisions;
    extra_decides = List.rev sim.extra_decides;
    crashed = Array.copy sim.crashed;
    incarnations = Array.copy sim.incarnation;
    broadcasts = sim.broadcasts;
    deliveries = sim.deliveries;
    discarded = sim.discarded;
    dropped = sim.dropped;
    link_dropped = sim.link_dropped;
    stuttered = sim.stuttered;
    suppressed = sim.suppressed;
    substituted = sim.substituted;
    max_ids_per_message = sim.max_ids;
    unreliable_deliveries = sim.unreliable_deliveries;
    injected = sim.injected;
    topo_changes = sim.topo_changes;
    end_time = sim.end_time;
    events_processed = sim.events_processed;
    hit_max_time = sim.hit_max_time;
    causal = sim.causal;
    provenance = sim.prov;
    trace = List.rev sim.trace;
  }

let run ?identities ?give_n ?give_diameter ?crashes ?recoveries ?drop ?stutter
    ?substitute ?injections ?on_inject ?topo_deltas ?clock ?max_time
    ?stop_when_all_decided ?track_causal ?provenance ?record_trace ?pp_msg
    ?unreliable ?obs algorithm ~topology ~scheduler ~inputs =
  let sim =
    create ?identities ?give_n ?give_diameter ?crashes ?recoveries ?drop
      ?stutter ?substitute ?injections ?on_inject ?topo_deltas ?clock
      ?max_time ?stop_when_all_decided ?track_causal ?provenance ?record_trace
      ?pp_msg ?unreliable ?obs algorithm ~topology ~scheduler ~inputs
  in
  let continue = ref true in
  while !continue do
    match step sim with `Stepped -> () | `Done | `Capped -> continue := false
  done;
  snapshot sim
