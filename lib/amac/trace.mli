(** Structured execution logs.

    When recording is enabled, the engine emits one entry per simulation
    event. Message payloads are rendered to strings at emission time (via the
    caller-supplied printer) so the trace type stays monomorphic. *)

type entry =
  | Broadcast_start of { time : int; node : int; ids : int; msg : string }
      (** a broadcast was handed to the MAC layer ([ids] = unique ids it
          carries) *)
  | Delivered of {
      time : int;
      node : int;
      sender : int;
      msg : string;
      cause : int;
          (** provenance vertex id of the broadcast this delivery belongs
              to, when the run collects a {!Obs.Provenance} DAG; [-1]
              otherwise *)
    }  (** a message from [sender] was delivered at [node] *)
  | Acked of { time : int; node : int }
      (** [node]'s in-flight broadcast completed *)
  | Decided of { time : int; node : int; value : int }
  | Discarded of { time : int; node : int; msg : string }
      (** [node] attempted to broadcast while one was already in flight *)
  | Crashed of { time : int; node : int }
  | Recovered of { time : int; node : int; incarnation : int }
      (** [node] rejoined with fresh state as [incarnation] (amnesiac
          restart) *)
  | Link_dropped of { time : int; node : int; sender : int }
      (** a delivery to [node] from [sender] was eaten by an injected link
          fault (loss window or partition) *)
  | Stuttered of { time : int; node : int; actions : int }
      (** [node] was inside a stutter window: it processed the event but its
          [actions] resulting actions were suppressed *)
  | Suppressed of { time : int; node : int; sender : int }
      (** a delivery to [node] from [sender] was eaten by the [substitute]
          adversary hook — Byzantine selective silence *)
  | Substituted of { time : int; node : int; sender : int; msg : string }
      (** the [substitute] adversary hook replaced the payload delivered to
          [node] — Byzantine equivocation or forgery; [msg] renders the
          payload actually delivered *)

val time_of : entry -> int

val node_of : entry -> int

val pp_entry : Format.formatter -> entry -> unit

(** [pp fmt entries] prints one entry per line, in order. *)
val pp : Format.formatter -> entry list -> unit

(** [decisions entries] is the [(node, value, time)] list of decide events,
    in trace order. *)
val decisions : entry list -> (int * int * int) list

(** [for_node entries node] filters the trace to one node's events. *)
val for_node : entry list -> int -> entry list

(** [timeline ~n entries] renders an ASCII time/node grid: one row per tick
    with an event, one column per node. Cell codes: [B] broadcast start,
    [r] message received, [a] ack, [D] decided, [X] crashed, [R] recovered,
    [~] broadcast discarded (busy), [!] delivery lost to a link fault, [s]
    stuttered, [#] delivery suppressed by the adversary hook, [*] payload
    substituted by it. When several events hit the same node at the same tick,
    decisions, crashes and recoveries win, then broadcasts, then receives,
    then acks. Intended for small runs (the examples); n is the node
    count. *)
val timeline : n:int -> entry list -> string
