type ctx = {
  id : Node_id.t;
  n : int option;
  diameter : int option;
  degree : int;
  input : int;
}

type 'm action = Broadcast of 'm | Decide of int

type ('s, 'm) hooks = {
  fingerprint : 's -> Fingerprint.t -> Fingerprint.t;
  fingerprint_msg : 'm -> Fingerprint.t -> Fingerprint.t;
  clone : 's -> 's;
}

type ('s, 'm) t = {
  name : string;
  init : ctx -> 's * 'm action list;
  on_receive : ctx -> 's -> 'm -> 'm action list;
  on_ack : ctx -> 's -> 'm action list;
  msg_ids : 'm -> int;
  hooks : ('s, 'm) hooks option;
}

let decides actions =
  List.filter_map (function Decide v -> Some v | Broadcast _ -> None) actions

let broadcasts actions =
  List.filter_map (function Broadcast m -> Some m | Decide _ -> None) actions
