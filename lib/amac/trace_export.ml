type open_span = { started : int; ids : int; msg : string }

let complete ~node ~start ~until ~ids ~msg ~acked : Obs.Span.event =
  Obs.Span.Complete
    {
      name = "broadcast";
      cat = "mac";
      start_time = start;
      duration = until - start;
      node;
      args =
        (("msg", Obs.Json.String msg) :: ("ids", Obs.Json.Int ids)
        :: (if acked then [] else [ ("unacked", Obs.Json.Bool true) ]));
    }

let instant ~name ~cat ~time ~node args : Obs.Span.event =
  Obs.Span.Instant { name; cat; time; node; args }

let spans entries =
  let open_spans : (int, open_span) Hashtbl.t = Hashtbl.create 16 in
  let out = ref [] in
  let emit e = out := e :: !out in
  let end_time =
    List.fold_left (fun acc e -> max acc (Trace.time_of e)) 0 entries
  in
  let close_open ~node ~until ~acked =
    match Hashtbl.find_opt open_spans node with
    | None -> ()
    | Some { started; ids; msg } ->
        Hashtbl.remove open_spans node;
        emit (complete ~node ~start:started ~until ~ids ~msg ~acked)
  in
  List.iter
    (fun entry ->
      match entry with
      | Trace.Broadcast_start { time; node; ids; msg } ->
          (* A still-open span here means the previous broadcast's ack was
             cancelled (crash + recovery): close it as lost work. *)
          close_open ~node ~until:time ~acked:false;
          Hashtbl.replace open_spans node { started = time; ids; msg }
      | Trace.Acked { time; node } -> (
          match Hashtbl.find_opt open_spans node with
          | Some _ -> close_open ~node ~until:time ~acked:true
          | None ->
              (* Hand-built or truncated trace: keep the ack visible. *)
              emit (instant ~name:"ack" ~cat:"mac" ~time ~node []))
      | Trace.Delivered { time; node; sender; msg; cause } ->
          emit
            (instant ~name:"deliver" ~cat:"mac" ~time ~node
               (("from", Obs.Json.Int sender)
               :: ("msg", Obs.Json.String msg)
               ::
               (if cause >= 0 then [ ("cause", Obs.Json.Int cause) ] else [])))
      | Trace.Decided { time; node; value } ->
          emit
            (instant ~name:"decide" ~cat:"consensus" ~time ~node
               [ ("value", Obs.Json.Int value) ])
      | Trace.Discarded { time; node; msg } ->
          emit
            (instant ~name:"discard" ~cat:"mac" ~time ~node
               [ ("msg", Obs.Json.String msg) ])
      | Trace.Crashed { time; node } ->
          close_open ~node ~until:time ~acked:false;
          emit (instant ~name:"crash" ~cat:"fault" ~time ~node [])
      | Trace.Recovered { time; node; incarnation } ->
          emit
            (instant ~name:"recover" ~cat:"fault" ~time ~node
               [ ("incarnation", Obs.Json.Int incarnation) ])
      | Trace.Link_dropped { time; node; sender } ->
          emit
            (instant ~name:"link_drop" ~cat:"fault" ~time ~node
               [ ("from", Obs.Json.Int sender) ])
      | Trace.Stuttered { time; node; actions } ->
          emit
            (instant ~name:"stutter" ~cat:"fault" ~time ~node
               [ ("actions", Obs.Json.Int actions) ])
      | Trace.Suppressed { time; node; sender } ->
          emit
            (instant ~name:"byz_suppress" ~cat:"adversary" ~time ~node
               [ ("from", Obs.Json.Int sender) ])
      | Trace.Substituted { time; node; sender; msg } ->
          emit
            (instant ~name:"byz_substitute" ~cat:"adversary" ~time ~node
               [ ("from", Obs.Json.Int sender); ("msg", Obs.Json.String msg) ]))
    entries;
  (* Broadcasts still in flight when the run stopped. *)
  Hashtbl.fold (fun node _ acc -> node :: acc) open_spans []
  |> List.sort Int.compare
  |> List.iter (fun node -> close_open ~node ~until:end_time ~acked:false);
  List.rev !out
