type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let length q = q.size

let is_empty q = q.size = 0

(* [before a b] orders by key first, then by insertion sequence so that
   equal-priority events dequeue deterministically in FIFO order. *)
let before a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

(* One growth path for every add: the incoming entry doubles as the fill
   value, so the empty heap needs no dummy (the old code read [q.heap.(0)]
   and had to special-case length 0). *)
let grow_if_full q filler =
  if q.size = Array.length q.heap then begin
    let heap = Array.make (max 16 (2 * Array.length q.heap)) filler in
    Array.blit q.heap 0 heap 0 q.size;
    q.heap <- heap
  end

let add q ~key value =
  let entry = { key; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  grow_if_full q entry;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  (* Sift the new entry up to its place. *)
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if before q.heap.(i) q.heap.(parent) then begin
        let tmp = q.heap.(i) in
        q.heap.(i) <- q.heap.(parent);
        q.heap.(parent) <- tmp;
        up parent
      end
    end
  in
  up (q.size - 1)

let peek q =
  if q.size = 0 then raise Not_found;
  let e = q.heap.(0) in
  (e.key, e.value)

let pop q =
  if q.size = 0 then raise Not_found;
  let top = q.heap.(0) in
  q.size <- q.size - 1;
  if q.size > 0 then begin
    q.heap.(0) <- q.heap.(q.size);
    (* Sift the moved entry down to restore the heap property. *)
    let rec down i =
      let left = (2 * i) + 1 and right = (2 * i) + 2 in
      let smallest = ref i in
      if left < q.size && before q.heap.(left) q.heap.(!smallest) then
        smallest := left;
      if right < q.size && before q.heap.(right) q.heap.(!smallest) then
        smallest := right;
      if !smallest <> i then begin
        let tmp = q.heap.(i) in
        q.heap.(i) <- q.heap.(!smallest);
        q.heap.(!smallest) <- tmp;
        down !smallest
      end
    in
    down 0
  end;
  (top.key, top.value)

let clear q = q.size <- 0

(* Pre-size the backing array so a reused queue (cleared between runs or
   between per-group transport rounds) never regrows through the doubling
   path. [dummy] only fills slots beyond [size]; it is never returned. *)
let ensure_capacity q capacity ~dummy =
  if capacity > Array.length q.heap then begin
    let filler = { key = 0; seq = 0; value = dummy } in
    let heap = Array.make capacity filler in
    Array.blit q.heap 0 heap 0 q.size;
    q.heap <- heap
  end

let of_list entries =
  let q = create () in
  List.iter (fun (key, value) -> add q ~key value) entries;
  q

let to_list q =
  let rec collect i acc =
    if i < 0 then acc
    else collect (i - 1) ((q.heap.(i).key, q.heap.(i).value) :: acc)
  in
  collect (q.size - 1) []
