(* Splitmix64 (Steele, Lea, Flood 2014): a tiny, high-quality, splittable
   generator. Exact 64-bit wraparound arithmetic via Int64. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let fingerprint t acc = Fingerprint.int (Int64.to_int t.state) acc

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible because
     bounds in this code base are tiny relative to 2^62. *)
  let raw = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  raw mod bound

let int_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_range: hi < lo";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t bound =
  let raw = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (raw /. 9007199254740992.0 (* 2^53 *))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | list -> List.nth list (int t (List.length list))
