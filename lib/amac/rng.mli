(** Deterministic, splittable pseudo-random number generator (splitmix64).

    Every stochastic component of the simulator (random schedulers, random
    topologies, workload generators) draws from an explicit [Rng.t] so that
    each experiment is replayable from a single integer seed. [split] derives
    an independent stream, which lets parallel sweeps share one master seed
    without correlating their draws. *)

type t

(** [create seed] is a generator seeded with [seed]. *)
val create : int -> t

(** [split t] derives a new generator whose stream is independent of
    subsequent draws from [t]. *)
val split : t -> t

(** [copy t] is an independent generator at the same stream position —
    what a state-cloning hook needs (cf. {!Algorithm.hooks}). *)
val copy : t -> t

(** [fingerprint t acc] folds the generator's current position into a
    state fingerprint. *)
val fingerprint : t -> Fingerprint.t -> Fingerprint.t

(** [int t bound] is a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** [int_range t ~lo ~hi] is a uniform integer in [\[lo, hi\]] (inclusive).
    @raise Invalid_argument if [hi < lo]. *)
val int_range : t -> lo:int -> hi:int -> int

(** [bool t] is a uniform boolean. *)
val bool : t -> bool

(** [float t bound] is a uniform float in [\[0, bound)]. *)
val float : t -> float -> float

(** [bits64 t] is the next raw 64-bit output. *)
val bits64 : t -> int64

(** [shuffle t arr] permutes [arr] in place, uniformly (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [pick t list] is a uniformly chosen element of [list].
    @raise Invalid_argument on the empty list. *)
val pick : t -> 'a list -> 'a
