(** Fast, non-allocating structural fingerprints for model-checker states.

    The schedule-space explorer keys every reachable configuration; doing
    that with [Digest.string (Marshal.to_string ...)] allocates the whole
    marshalled buffer and runs MD5 over it — the dominant cost of
    exploration (BENCH.json B5). A fingerprint is instead an accumulator
    folded by hand over the state's fields: each combinator mixes one
    scalar into a 63-bit hash with splitmix-style avalanche rounds, no
    intermediate buffer, no C digest call.

    Combinators take the accumulator {e last} so folds read as pipelines:

    {[
      acc |> Fingerprint.int st.round |> Fingerprint.bool st.sending
          |> Fingerprint.list Fingerprint.int st.witnesses
    ]}

    Structure markers: [option] and [list] mix a tag/length before their
    payload, so [Some 0] vs [None] and [[0]] vs [[]; [0]]-style shape
    ambiguities cannot alias. Two structurally equal values always fold to
    the same fingerprint; distinct values collide with probability
    ~2^-63 per pair (the explorer can double-check against the Marshal
    digest — see {!Mcheck.Explore.config.check_collisions}). *)

type t = private int

(** The empty fold (FNV-style offset basis). *)
val empty : t

val int : int -> t -> t

val bool : bool -> t -> t

val char : char -> t -> t

(** Mixes length then bytes, 8 bytes per round. *)
val string : string -> t -> t

(** [None] and [Some v] are distinguished by a tag. *)
val option : ('a -> t -> t) -> 'a option -> t -> t

(** Mixes the length, then each element in order. *)
val list : ('a -> t -> t) -> 'a list -> t -> t

(** Mixes the length, then each element in order. *)
val array : ('a -> t -> t) -> 'a array -> t -> t

(** The finished 63-bit value (non-negative). *)
val to_int : t -> int

(** Open-addressed, int-keyed hash table for fingerprint keys.

    The explorer's seen-set workload: millions of [find]/[set] pairs on
    keys that are already uniformly mixed, never deleted. Linear probing
    over a power-of-two array, resized at 2/3 load; [upsert] probes once
    for the read-modify-write the seen set does per visited state. *)
module Table : sig
  type 'a t

  (** [create n] pre-sizes for about [n] entries. *)
  val create : int -> 'a t

  val length : 'a t -> int

  val find : 'a t -> int -> 'a option

  val set : 'a t -> int -> 'a -> unit

  (** [upsert t key f] stores [f (find t key)] at [key] with a single
      probe sequence. *)
  val upsert : 'a t -> int -> ('a option -> 'a) -> unit

  (** [fold f t acc] over (key, value) pairs, unspecified order. *)
  val fold : (int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
end
