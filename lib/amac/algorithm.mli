(** The programming interface algorithms implement against the MAC layer.

    An algorithm is an event-driven state machine per node: it is initialised
    once, then reacts to message deliveries and to acknowledgments of its own
    broadcasts. Everything the paper's model lets a node observe is in these
    three callbacks; in particular there is {e no clock} and {e no sender
    metadata} — if an algorithm needs the sender's identity it must put the
    id inside the message (anonymous algorithms, by definition, cannot).

    Handlers mutate their node-local state in place and return the actions to
    take. Local computation is free (zero simulated time), as in Sec 2. *)

(** What a node knows a priori. The paper's lower bounds are exactly about
    which of these fields are available: Thm 3.3 removes [id]
    ([Node_id.Anonymous]), Thm 3.9 removes [n], and the two-phase algorithm
    (Sec 4.1) needs neither [n] nor [diameter]. *)
type ctx = {
  id : Node_id.t;  (** this node's identity (or [Anonymous]) *)
  n : int option;  (** network size, when that knowledge is granted *)
  diameter : int option;  (** network diameter, when granted *)
  degree : int;  (** own neighbor count — local information, always known *)
  input : int;  (** this node's initial consensus value (0 or 1) *)
}

type 'm action =
  | Broadcast of 'm
      (** Hand a message to the MAC layer. If a broadcast is already in
          flight (no ack yet), the layer {e discards} this message — Sec 2's
          rule. Queueing is the algorithm's job (cf. wPAXOS's broadcast
          service). *)
  | Decide of int  (** Perform the single irrevocable decide action. *)

(** Optional verification fast-path hooks. The model checker
    ({!Mcheck.Explore}) keys and snapshots millions of node states; an
    algorithm that provides these escapes the generic
    [Marshal]/[Digest]-based fallback:

    - [fingerprint] folds the state's {e logical} content into a
      {!Fingerprint.t}. Contract: structurally equal states (equal
      marshalled bytes) must fold equal; states the algorithm considers
      equivalent (e.g. hash tables with the same bindings in a different
      order) {e may} fold equal — that only improves deduplication.
    - [fingerprint_msg] does the same for an in-flight message.
    - [clone] is a deep copy of everything mutable in the state. Messages
      are treated as immutable and may be shared between the copies. *)
type ('s, 'm) hooks = {
  fingerprint : 's -> Fingerprint.t -> Fingerprint.t;
  fingerprint_msg : 'm -> Fingerprint.t -> Fingerprint.t;
  clone : 's -> 's;
}

type ('s, 'm) t = {
  name : string;
  init : ctx -> 's * 'm action list;
      (** Create the node's state and its first actions. *)
  on_receive : ctx -> 's -> 'm -> 'm action list;
      (** A neighbor's broadcast was delivered. *)
  on_ack : ctx -> 's -> 'm action list;
      (** The MAC layer finished this node's current broadcast; the node may
          broadcast again. *)
  msg_ids : 'm -> int;
      (** How many unique ids the message carries — the engine tracks the
          maximum to check the model's O(1)-ids-per-message restriction. *)
  hooks : ('s, 'm) hooks option;
      (** [None] = use the Marshal fallback (always correct, slow). *)
}

(** [decides actions] extracts the decided values, in order. *)
val decides : 'm action list -> int list

(** [broadcasts actions] extracts the broadcast payloads, in order. *)
val broadcasts : 'm action list -> 'm list
