(** Binary min-heap priority queue keyed by integer priorities.

    Used by {!Engine} as its event queue. Entries with equal keys are returned
    in insertion order (the heap stores a monotonically increasing sequence
    number alongside each key), which makes simulation runs fully
    deterministic. *)

type 'a t

(** [create ()] is a fresh empty queue. *)
val create : unit -> 'a t

(** [length q] is the number of queued entries. *)
val length : 'a t -> int

(** [is_empty q] is [length q = 0]. *)
val is_empty : 'a t -> bool

(** [add q ~key v] enqueues [v] with priority [key]. *)
val add : 'a t -> key:int -> 'a -> unit

(** [pop q] removes and returns the minimum-key entry, ties broken by
    insertion order. @raise Not_found if the queue is empty. *)
val pop : 'a t -> int * 'a

(** [peek q] is the minimum-key entry without removing it.
    @raise Not_found if the queue is empty. *)
val peek : 'a t -> int * 'a

(** [clear q] removes every entry. *)
val clear : 'a t -> unit

(** [ensure_capacity q n ~dummy] grows the backing array to hold at least
    [n] entries without further allocation. [dummy] fills the unused slots
    and is never returned by {!pop}/{!peek}. Together with {!clear} this is
    the reuse path for pooled queues (e.g. the sharded transport's
    per-group outboxes): clear + ensure_capacity instead of reallocating a
    fresh queue per group or per incarnation. *)
val ensure_capacity : 'a t -> int -> dummy:'a -> unit

(** [of_list entries] is a queue holding every (key, value) pair, with
    insertion order (and so FIFO tie-breaking) following the list — what
    engine reset paths use instead of rebuilding element-by-element. *)
val of_list : (int * 'a) list -> 'a t

(** [to_list q] is every queued (key, value) pair in unspecified order;
    intended for tests and debugging. *)
val to_list : 'a t -> (int * 'a) list
