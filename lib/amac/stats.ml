module Histogram = Obs.Histogram

let require_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty list")
  | xs -> xs

(* NaN guard: a single NaN sample must not poison an aggregate (degenerate
   inputs show up in bench sweeps where some seed never decided). NaNs are
   dropped; an all-NaN list is rejected like an empty one. *)
let require_numeric name xs =
  let xs = require_nonempty name xs in
  match List.filter (fun x -> not (Float.is_nan x)) xs with
  | [] -> invalid_arg (name ^ ": all-NaN input")
  | ys -> ys

let mean xs =
  let xs = require_nonempty "Stats.mean" xs in
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let minimum xs =
  match require_nonempty "Stats.minimum" xs with
  | first :: rest -> List.fold_left min first rest
  | [] -> assert false

let maximum xs =
  match require_nonempty "Stats.maximum" xs with
  | first :: rest -> List.fold_left max first rest
  | [] -> assert false

let percentile p xs =
  if Float.is_nan p || p < 0.0 || p > 100.0 then
    invalid_arg "Stats.percentile: p out of range";
  let xs = require_numeric "Stats.percentile" xs in
  let sorted = List.sort Float.compare xs in
  let count = List.length sorted in
  let rank =
    int_of_float (ceil (p /. 100.0 *. float_of_int count)) - 1
  in
  List.nth sorted (max 0 (min (count - 1) rank))

let median xs = percentile 50.0 xs

let stddev xs =
  let xs = require_numeric "Stats.stddev" xs in
  let m = mean xs in
  let sq_sum = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
  (* max 0: rounding can push the variance of a constant list epsilon below
     zero, and sqrt of that is NaN. *)
  sqrt (Float.max 0.0 (sq_sum /. float_of_int (List.length xs)))

module Table = struct
  type t = {
    title : string;
    columns : string list;
    mutable rows : string list list;  (* reversed *)
    mutable notes : string list;  (* reversed *)
    mutable meta : (string * string) list;  (* reversed *)
    mutable series : (string * float list) list;  (* reversed *)
  }

  let create ~title ~columns =
    { title; columns; rows = []; notes = []; meta = []; series = [] }

  let add_row t cells =
    if List.length cells <> List.length t.columns then
      invalid_arg
        (Printf.sprintf "Stats.Table.add_row: %d cells for %d columns"
           (List.length cells) (List.length t.columns));
    t.rows <- cells :: t.rows

  let add_note t note = t.notes <- note :: t.notes

  let set_meta t key value = t.meta <- (key, value) :: t.meta

  let add_series t ~name values = t.series <- (name, values) :: t.series

  let render t =
    let rows = List.rev t.rows in
    let widths =
      List.mapi
        (fun i header ->
          List.fold_left
            (fun acc row -> max acc (String.length (List.nth row i)))
            (String.length header) rows)
        t.columns
    in
    let pad width s = s ^ String.make (max 0 (width - String.length s)) ' ' in
    let render_row cells =
      "  " ^ String.concat "  " (List.map2 pad widths cells)
    in
    let rule =
      "  " ^ String.concat "  " (List.map (fun w -> String.make w '-') widths)
    in
    let buf = Buffer.create 256 in
    Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
    Buffer.add_string buf (render_row t.columns ^ "\n");
    Buffer.add_string buf (rule ^ "\n");
    List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) rows;
    List.iter
      (fun note -> Buffer.add_string buf ("  note: " ^ note ^ "\n"))
      (List.rev t.notes);
    Buffer.contents buf

  let print t = print_string (render t)

  let json_of_series (name, values) =
    let finite = List.filter Float.is_finite values in
    let stat f = if finite = [] then Obs.Json.Null else Obs.Json.Float (f finite) in
    Obs.Json.Obj
      [
        ("name", Obs.Json.String name);
        ("count", Obs.Json.Int (List.length values));
        ("mean", stat mean);
        ("p50", stat (percentile 50.0));
        ("p99", stat (percentile 99.0));
        ("min", stat minimum);
        ("max", stat maximum);
        ("values", Obs.Json.List (List.map (fun v -> Obs.Json.Float v) values));
      ]

  let to_json t =
    let strings xs = Obs.Json.List (List.map (fun s -> Obs.Json.String s) xs) in
    Obs.Json.Obj
      [
        ("title", Obs.Json.String t.title);
        ("columns", strings t.columns);
        ( "rows",
          Obs.Json.List (List.rev_map (fun row -> strings row) t.rows) );
        ("notes", strings (List.rev t.notes));
        ( "meta",
          Obs.Json.Obj
            (List.rev_map (fun (k, v) -> (k, Obs.Json.String v)) t.meta) );
        ("series", Obs.Json.List (List.rev_map json_of_series t.series));
      ]
end
