(* Fixed-size domain pool. All deque state lives under one pool mutex —
   tasks submitted here are coarse (whole fuzz chunks, whole frontier
   slices), so contention on the lock is negligible and the simple
   invariant "everything mutable is guarded by [m]" holds throughout.
   Results cross domains through arrays written under that same lock
   discipline (task completion is published via [m]), so no torn reads. *)

type task = { run : unit -> unit }

(* Own end: push/pop [front] (LIFO, cache-warm). Thieves take the oldest
   task from [back] so a steal grabs the work least likely to be touched
   by the owner next. *)
type deque = { mutable front : task list; mutable back : task list }

type pool = {
  m : Mutex.t;
  work_cv : Condition.t;  (* workers sleep here waiting for tasks *)
  done_cv : Condition.t;  (* the [map] caller sleeps here draining a batch *)
  deques : deque array;  (* index 0 belongs to the caller *)
  mutable pending : int;  (* submitted tasks not yet finished *)
  mutable stopped : bool;
  mutable tasks_run : int;
  mutable steals : int;
  mutable workers : unit Domain.t array;
}

type stats = { tasks : int; steals : int }

let push dq task = dq.front <- task :: dq.front

let pop_own dq =
  match dq.front with
  | task :: rest ->
      dq.front <- rest;
      Some task
  | [] -> (
      match List.rev dq.back with
      | task :: rest ->
          dq.back <- rest;
          dq.front <- [];
          Some task
      | [] -> None)

let steal dq =
  match dq.back with
  | task :: rest ->
      dq.back <- rest;
      Some task
  | [] -> (
      match List.rev dq.front with
      | task :: rest ->
          dq.front <- rest;
          dq.back <- [];
          Some task
      | [] -> None)

(* Must be called with [pool.m] held. *)
let take pool who =
  match pop_own pool.deques.(who) with
  | Some _ as t -> t
  | None ->
      let size = Array.length pool.deques in
      let rec scan k =
        if k = size then None
        else
          let victim = (who + k) mod size in
          match steal pool.deques.(victim) with
          | Some _ as t ->
              pool.steals <- pool.steals + 1;
              t
          | None -> scan (k + 1)
      in
      scan 1

(* Must be called with [pool.m] held; returns with it held. *)
let finish_task pool =
  pool.tasks_run <- pool.tasks_run + 1;
  pool.pending <- pool.pending - 1;
  if pool.pending = 0 then Condition.broadcast pool.done_cv

let rec worker_loop pool who =
  Mutex.lock pool.m;
  let rec next () =
    if pool.stopped then None
    else
      match take pool who with
      | Some _ as t -> t
      | None ->
          Condition.wait pool.work_cv pool.m;
          next ()
  in
  match next () with
  | None -> Mutex.unlock pool.m
  | Some task ->
      Mutex.unlock pool.m;
      task.run ();
      Mutex.lock pool.m;
      finish_task pool;
      Mutex.unlock pool.m;
      worker_loop pool who

let create ~domains () =
  let size = max 1 domains in
  let pool =
    {
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      deques = Array.init size (fun _ -> { front = []; back = [] });
      pending = 0;
      stopped = false;
      tasks_run = 0;
      steals = 0;
      workers = [||];
    }
  in
  pool.workers <-
    Array.init (size - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop pool (i + 1)));
  pool

let size pool = Array.length pool.deques

let map pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if size pool = 1 then Array.map f arr
  else begin
    let results = Array.make n None in
    let failures = Array.make n None in
    let task i =
      {
        run =
          (fun () ->
            match f arr.(i) with
            | v -> results.(i) <- Some v
            | exception e -> failures.(i) <- Some e);
      }
    in
    Mutex.lock pool.m;
    let size = size pool in
    for i = 0 to n - 1 do
      push pool.deques.(i mod size) (task i)
    done;
    pool.pending <- pool.pending + n;
    Condition.broadcast pool.work_cv;
    (* The caller works through the batch as worker 0, sleeping only when
       every remaining task is already executing on some other domain. *)
    let rec drain () =
      if pool.pending > 0 then
        match take pool 0 with
        | Some task ->
            Mutex.unlock pool.m;
            task.run ();
            Mutex.lock pool.m;
            finish_task pool;
            drain ()
        | None ->
            Condition.wait pool.done_cv pool.m;
            drain ()
    in
    drain ();
    Mutex.unlock pool.m;
    Array.iter (function Some e -> raise e | None -> ()) failures;
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* no failure, so every slot was written *))
      results
  end

let stats pool =
  Mutex.lock pool.m;
  let s = { tasks = pool.tasks_run; steals = pool.steals } in
  Mutex.unlock pool.m;
  s

let shutdown pool =
  Mutex.lock pool.m;
  let workers = pool.workers in
  pool.workers <- [||];
  pool.stopped <- true;
  Condition.broadcast pool.work_cv;
  Mutex.unlock pool.m;
  Array.iter Domain.join workers

let with_pool ~domains f =
  let pool = create ~domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
