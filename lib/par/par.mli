(** A small fixed-size domain pool with work-stealing deques and a
    deterministic result merge.

    OCaml 5 gives the repo real parallelism; this module is the only place
    that spawns domains. The design is deliberately minimal — the
    verification workloads that use it (fuzz campaigns, frontier
    expansion, bench sweeps) submit {e coarse} tasks, so a single pool
    lock around the deques costs nothing measurable while keeping the
    code obviously correct.

    Scheduling: [map] deals tasks round-robin onto per-worker deques;
    each worker pops its own deque LIFO and, when empty, steals the
    {e oldest} task from a sibling (classic work-stealing ends). The
    caller participates as worker 0, so a pool of size 1 spawns no
    domains and runs inline — the deterministic baseline that parallel
    runs are diffed against.

    Determinism contract: [map] writes result [i] from input [i]
    regardless of which domain executed it, so the output array order
    never depends on the schedule. Anything built on [map] whose tasks
    are pure functions of their input is byte-deterministic at any pool
    size.

    One [map] may run at a time per pool (callers are expected to own
    their pool); tasks must not themselves call [map] on the same pool. *)

type pool

(** Cumulative scheduler counters (monotone over the pool's lifetime). *)
type stats = { tasks : int;  (** tasks executed *) steals : int }

(** [create ~domains ()] — a pool of total parallelism [domains]
    (clamped to >= 1): [domains - 1] spawned worker domains plus the
    calling thread. *)
val create : domains:int -> unit -> pool

(** Total parallelism, including the caller. *)
val size : pool -> int

(** [map pool f arr] — [Array.map f arr], elements evaluated in parallel,
    results in input order. The first exception raised by [f] (lowest
    index) is re-raised after every task has settled. Inline when
    [size pool = 1]. *)
val map : pool -> ('a -> 'b) -> 'a array -> 'b array

val stats : pool -> stats

(** Joins the spawned domains. The pool must not be used afterwards;
    idempotent. *)
val shutdown : pool -> unit

(** [with_pool ~domains f] — [create], run [f], always [shutdown]. *)
val with_pool : domains:int -> (pool -> 'a) -> 'a
