type event =
  | Crash of { node : int; at : int }
  | Recover of { node : int; at : int }
  | Link_drop of { edge : int * int; from_ : int; until : int }
  | Partition of { cut : int list; from_ : int; until : int }
  | Stutter of { node : int; from_ : int; until : int }

type plan = event list

let pp_event fmt = function
  | Crash { node; at } -> Format.fprintf fmt "crash %d @t%d" node at
  | Recover { node; at } -> Format.fprintf fmt "recover %d @t%d" node at
  | Link_drop { edge = u, v; from_; until } ->
      Format.fprintf fmt "drop (%d,%d) [%d,%d)" u v from_ until
  | Partition { cut; from_; until } ->
      Format.fprintf fmt "partition {%s} [%d,%d)"
        (String.concat "," (List.map string_of_int cut))
        from_ until
  | Stutter { node; from_; until } ->
      Format.fprintf fmt "stutter %d [%d,%d)" node from_ until

let pp fmt plan =
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i e ->
      if i > 0 then Format.fprintf fmt "@,";
      pp_event fmt e)
    plan;
  Format.fprintf fmt "@]"

let to_string plan = Format.asprintf "%a" pp plan

(* A plan's fault horizon: the first instant after which no injected fault
   is active any more (loss and stutter windows closed, every scheduled
   crash either recovered or permanent). Recoveries and window closings
   contribute their own time; a Crash with no matching Recover contributes
   nothing — the node is simply gone, which is the fail-stop case the
   checker already treats as "not correct at end". *)
let horizon plan =
  List.fold_left
    (fun acc -> function
      | Crash _ -> acc
      | Recover { at; _ } -> max acc at
      | Link_drop { until; _ } | Partition { until; _ } | Stutter { until; _ }
        ->
          max acc until)
    0 plan

let crashes plan =
  List.filter_map
    (function Crash { node; at } -> Some (node, at) | _ -> None)
    plan

let recoveries plan =
  List.filter_map
    (function Recover { node; at } -> Some (node, at) | _ -> None)
    plan

(* Nodes that are up at the end of the plan: never crashed, or crashed but
   recovered after their last crash. *)
let correct_at_end ~n plan =
  let up = Array.make n true in
  let last = Array.make n min_int in
  List.iter
    (function
      | Crash { node; at } ->
          if at >= last.(node) then begin
            last.(node) <- at;
            up.(node) <- false
          end
      | Recover { node; at } ->
          if at >= last.(node) then begin
            last.(node) <- at;
            up.(node) <- true
          end
      | Link_drop _ | Partition _ | Stutter _ -> ())
    plan;
  List.filter (fun i -> up.(i)) (List.init n (fun i -> i))

(* Staggered restart of a node list: each node crashes [gap] ticks after
   the previous one's crash and recovers [down_for] ticks later. With
   gap > down_for at most one node is down at a time (the classic
   one-at-a-time rolling restart); smaller gaps overlap the outages. *)
let rolling_restart ~nodes ~start ~down_for ~gap =
  if down_for < 1 then invalid_arg "Fault.rolling_restart: down_for < 1";
  if gap < 1 then invalid_arg "Fault.rolling_restart: gap < 1";
  if start < 0 then invalid_arg "Fault.rolling_restart: start < 0";
  List.concat
    (List.mapi
       (fun i node ->
         let at = start + (i * gap) in
         [ Crash { node; at }; Recover { node; at = at + down_for } ])
       nodes)

let norm_edge (u, v) = if u <= v then (u, v) else (v, u)

let overlap (a_from, a_until) (b_from, b_until) =
  a_from < b_until && b_from < a_until

let invalid fmt = Printf.ksprintf invalid_arg ("Fault.validate: " ^^ fmt)

let validate ~n plan =
  let check_node what node =
    if node < 0 || node >= n then
      invalid "%s node %d out of range [0,%d)" what node n
  in
  let check_window what from_ until =
    if from_ < 0 then invalid "%s window starts at negative time %d" what from_;
    if until <= from_ then
      invalid "%s window [%d,%d) is empty or inverted" what from_ until
  in
  List.iter
    (function
      | Crash { node; at } ->
          check_node "crash" node;
          if at < 0 then invalid "crash of node %d at negative time %d" node at
      | Recover { node; at } ->
          check_node "recover" node;
          if at < 0 then
            invalid "recover of node %d at negative time %d" node at
      | Link_drop { edge = u, v; from_; until } ->
          check_node "link-drop" u;
          check_node "link-drop" v;
          if u = v then invalid "link-drop edge (%d,%d) is a self-loop" u v;
          check_window "link-drop" from_ until
      | Partition { cut; from_; until } ->
          List.iter (check_node "partition") cut;
          check_window "partition" from_ until;
          if cut = [] then invalid "partition cut is empty";
          if List.length (List.sort_uniq Int.compare cut) <> List.length cut
          then invalid "partition cut has duplicate nodes";
          if List.length cut >= n then
            invalid "partition cut contains every node (nothing to cut)"
      | Stutter { node; from_; until } ->
          check_node "stutter" node;
          check_window "stutter" from_ until)
    plan;
  (* Per-node crash/recover alternation: crash < recover < crash < ...
     Duplicate crash of the same incarnation and recover-before-crash are
     exactly the malformed shapes this rejects. Ties are ambiguous. *)
  for node = 0 to n - 1 do
    let events =
      List.filter_map
        (function
          | Crash { node = v; at } when v = node -> Some (at, `Crash)
          | Recover { node = v; at } when v = node -> Some (at, `Recover)
          | _ -> None)
        plan
      |> List.sort (fun (ta, _) (tb, _) -> Int.compare ta tb)
    in
    let rec walk state last = function
      | [] -> ()
      | (at, kind) :: rest -> (
          if last = Some at then
            invalid "node %d has two crash/recover events at t=%d" node at;
          match (state, kind) with
          | `Up, `Crash -> walk `Down (Some at) rest
          | `Down, `Recover -> walk `Up (Some at) rest
          | `Down, `Crash ->
              invalid
                "duplicate crash of node %d at t=%d (same incarnation \
                 crashed twice, no recovery between)"
                node at
          | `Up, `Recover ->
              invalid "recover of node %d at t=%d before any crash" node at)
    in
    walk `Up None events
  done;
  (* Overlapping loss windows on the same edge are ambiguous (which window
     ate the delivery?) and almost always a plan-construction bug. Same for
     overlapping stutter windows on one node, and for two partitions in
     force at once. *)
  let link_windows = Hashtbl.create 16 in
  let stutter_windows = Hashtbl.create 16 in
  let partitions = ref [] in
  List.iter
    (function
      | Link_drop { edge; from_; until } ->
          let e = norm_edge edge in
          let prior = Option.value ~default:[] (Hashtbl.find_opt link_windows e) in
          List.iter
            (fun w ->
              if overlap w (from_, until) then
                invalid
                  "overlapping loss windows on edge (%d,%d): [%d,%d) and \
                   [%d,%d)"
                  (fst e) (snd e) (fst w) (snd w) from_ until)
            prior;
          Hashtbl.replace link_windows e ((from_, until) :: prior)
      | Stutter { node; from_; until } ->
          let prior =
            Option.value ~default:[] (Hashtbl.find_opt stutter_windows node)
          in
          List.iter
            (fun w ->
              if overlap w (from_, until) then
                invalid
                  "overlapping stutter windows on node %d: [%d,%d) and \
                   [%d,%d)"
                  node (fst w) (snd w) from_ until)
            prior;
          Hashtbl.replace stutter_windows node ((from_, until) :: prior)
      | Partition { from_; until; _ } ->
          List.iter
            (fun w ->
              if overlap w (from_, until) then
                invalid
                  "overlapping partitions: windows [%d,%d) and [%d,%d) are \
                   both in force"
                  (fst w) (snd w) from_ until)
            !partitions;
          partitions := (from_, until) :: !partitions
      | Crash _ | Recover _ -> ())
    plan

type compiled = {
  crashes : (int * int) list;
  recoveries : (int * int) list;
  drop : (now:int -> sender:int -> receiver:int -> bool) option;
  stutter : (now:int -> node:int -> bool) option;
}

let compile ~n plan =
  validate ~n plan;
  let link_windows = Hashtbl.create 16 in
  let stutter_by_node = Hashtbl.create 16 in
  let partitions = ref [] in
  List.iter
    (function
      | Link_drop { edge; from_; until } ->
          let e = norm_edge edge in
          Hashtbl.add link_windows e (from_, until)
      | Stutter { node; from_; until } ->
          Hashtbl.add stutter_by_node node (from_, until)
      | Partition { cut; from_; until } ->
          let side = Array.make n false in
          List.iter (fun v -> side.(v) <- true) cut;
          partitions := (side, from_, until) :: !partitions
      | Crash _ | Recover _ -> ())
    plan;
  let in_window now (from_, until) = from_ <= now && now < until in
  let drop =
    if Hashtbl.length link_windows = 0 && !partitions = [] then None
    else
      Some
        (fun ~now ~sender ~receiver ->
          List.exists (in_window now)
            (Hashtbl.find_all link_windows (norm_edge (sender, receiver)))
          || List.exists
               (fun (side, from_, until) ->
                 in_window now (from_, until)
                 && side.(sender) <> side.(receiver))
               !partitions)
  in
  let stutter =
    if Hashtbl.length stutter_by_node = 0 then None
    else
      Some
        (fun ~now ~node ->
          List.exists (in_window now) (Hashtbl.find_all stutter_by_node node))
  in
  { crashes = crashes plan; recoveries = recoveries plan; drop; stutter }

(* Fault events as metrics: one counter per event kind, plus the plan's
   horizon as a gauge — so a metrics snapshot of a faulted run records what
   was injected next to what the engine measured. *)
let record ~obs plan =
  let count kind =
    Obs.Metrics.inc
      (Obs.Metrics.counter obs ~labels:[ ("kind", kind) ] "fault_events_total")
  in
  List.iter
    (fun event ->
      count
        (match event with
        | Crash _ -> "crash"
        | Recover _ -> "recover"
        | Link_drop _ -> "link_drop"
        | Partition _ -> "partition"
        | Stutter _ -> "stutter"))
    plan;
  Obs.Metrics.set
    (Obs.Metrics.gauge obs "fault_plan_horizon")
    (float_of_int (horizon plan))
