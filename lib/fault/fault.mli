(** Declarative fault injection: adversarial timelines over the abstract MAC
    layer.

    A {!plan} is a list of typed fault events. {!validate} rejects malformed
    plans up front; {!compile} turns a valid plan into the crash/recovery
    schedules and per-event predicates ({!Amac.Engine.create}'s [?crashes],
    [?recoveries], [?drop], [?stutter]) that the engine interprets — so every
    scheduler composes with every plan unchanged.

    In the paper's terms: [Crash] is the fail-stop adversary of Sec 2
    (non-atomic mid-broadcast crashes included); [Recover] extends it to
    amnesiac crash-recovery — the node rejoins with fresh state and re-runs
    [init], as in the crash-recovery models the follow-up work (Newport &
    Robinson 2018; Zhang & Tseng 2024) studies; [Link_drop] suspends the
    acknowledged-broadcast guarantee on one edge for a bounded window (the
    delivery is eaten, the sender's ack is not delayed — the sender cannot
    tell); [Partition] is the same as a bulk link fault across a cut; and
    [Stutter] freezes a node's {e outputs} while its state keeps evolving,
    modelling a node that is slow to act but not crashed. *)

type event =
  | Crash of { node : int; at : int }
  | Recover of { node : int; at : int }
      (** amnesiac restart: fresh state, [init] re-runs, a new incarnation *)
  | Link_drop of { edge : int * int; from_ : int; until : int }
      (** deliveries across [edge] (undirected) in [\[from_, until)] are
          silently dropped and counted *)
  | Partition of { cut : int list; from_ : int; until : int }
      (** deliveries straddling the cut (one endpoint in [cut], one outside)
          in [\[from_, until)] are dropped — partition-and-heal *)
  | Stutter of { node : int; from_ : int; until : int }
      (** in [\[from_, until)] the node receives and its state evolves, but
          the actions its handlers return are suppressed *)

type plan = event list

val pp_event : Format.formatter -> event -> unit

val pp : Format.formatter -> plan -> unit

val to_string : plan -> string

(** [horizon plan] is the first instant after which no injected fault is
    active: all windows closed, all scheduled recoveries done. Unrecovered
    crashes contribute nothing (fail-stop is forever). Liveness claims for
    hardened algorithms are of the form "decides after [horizon]". *)
val horizon : plan -> int

(** [crashes plan] / [recoveries plan] — the [(node, time)] schedules. *)
val crashes : plan -> (int * int) list

val recoveries : plan -> (int * int) list

(** [correct_at_end ~n plan] — the nodes that are up once the plan has
    played out: never crashed, or recovered after their last crash. *)
val correct_at_end : n:int -> plan -> int list

(** [rolling_restart ~nodes ~start ~down_for ~gap] — a staggered
    crash/recover pair per node: node [i] in [nodes] crashes at
    [start + i*gap] and recovers [down_for] ticks later. [gap > down_for]
    keeps at most one node down at a time (the production rolling-restart
    shape); smaller gaps overlap the outages.
    @raise Invalid_argument if [down_for < 1], [gap < 1] or [start < 0]. *)
val rolling_restart :
  nodes:int list -> start:int -> down_for:int -> gap:int -> plan

(** [validate ~n plan] checks the plan against an [n]-node system.

    @raise Invalid_argument (with a ["Fault.validate: ..."] message) on:
      out-of-range nodes or self-loop edges; negative times; empty or
      inverted windows; duplicate crash of the same incarnation; recover
      before any crash; crash and recover of one node at the same instant;
      an empty or all-node partition cut or duplicate nodes in it;
      overlapping loss windows on the same (undirected) edge; overlapping
      stutter windows on the same node; two partitions in force at once. *)
val validate : n:int -> plan -> unit

type compiled = {
  crashes : (int * int) list;
  recoveries : (int * int) list;
  drop : (now:int -> sender:int -> receiver:int -> bool) option;
  stutter : (now:int -> node:int -> bool) option;
}

(** [compile ~n plan] validates and lowers the plan to engine hooks. All
    window predicates are half-open: a window [\[from_, until)] is active at
    [from_] and inactive at [until]. *)
val compile : n:int -> plan -> compiled

(** [record ~obs plan] mirrors the plan into the metrics registry: a
    [fault_events_total] counter per event kind ([kind] label: [crash],
    [recover], [link_drop], [partition], [stutter]) and the plan's
    {!horizon} as the [fault_plan_horizon] gauge. {!Consensus.Runner.run}
    calls this when given both [~faults] and [~obs]. *)
val record : obs:Obs.Metrics.registry -> plan -> unit
