(** One-call experiment driver: run an algorithm and verify the outcome.

    Bundles {!Amac.Engine.run} with {!Checker.check} and the workload
    generators used across tests, examples and the bench harness. *)

type result = {
  outcome : Amac.Engine.outcome;
  report : Checker.report;
  degradation : Checker.degradation;
      (** safety asserted, liveness measured — the right lens under a fault
          plan (under no faults it simply reports full liveness) *)
  decision_time : int option;
      (** time of the last decision, i.e. the run's consensus latency *)
}

(** [run algorithm ~topology ~scheduler ~inputs ...] — parameters as in
    {!Amac.Engine.run}.

    @param faults a declarative {!Fault.plan}; it is validated and compiled
      ({!Fault.compile}) and its crash/recovery schedule merges with the
      legacy [?crashes] list. @raise Invalid_argument on a malformed plan.
    @param substitute the engine's Byzantine-adversary hook (per-recipient
      payload substitution / suppression, see {!Amac.Engine.run}); [Byz.wrap]
      produces it from a strategy.
    @param honest honest-node mask handed to {!Checker.check} /
      {!Checker.degrade}: consensus properties and liveness metrics quantify
      over honest nodes only.
    @param topo_deltas a churn/mobility schedule applied mid-run (see
      {!Amac.Engine.run}); {!Topo_gen} produces well-formed schedules.
    @param obs a metrics registry: the engine instruments itself into it
      (see {!Amac.Engine.run}), the fault plan is mirrored as
      [fault_events_total] counters ({!Fault.record}), and the checker's
      degradation verdict lands as [checker_safe] /
      [checker_decided_fraction] / [checker_max_incarnation] /
      [checker_max_decide_time] gauges labelled by algorithm. *)
val run :
  ?identities:Amac.Node_id.t array ->
  ?give_n:bool ->
  ?give_diameter:bool ->
  ?crashes:(int * int) list ->
  ?faults:Fault.plan ->
  ?substitute:(now:int -> sender:int -> receiver:int -> 'm -> 'm option) ->
  ?honest:bool array ->
  ?max_time:int ->
  ?track_causal:bool ->
  ?provenance:Obs.Provenance.t ->
  ?record_trace:bool ->
  ?pp_msg:('m -> string) ->
  ?unreliable:Amac.Topology.t ->
  ?topo_deltas:(int * Amac.Topology.delta) list ->
  ?obs:Obs.Metrics.registry ->
  ('s, 'm) Amac.Algorithm.t ->
  topology:Amac.Topology.t ->
  scheduler:Amac.Scheduler.t ->
  inputs:int array ->
  result

(** [run_exn] is [run] but raises [Failure] with the checker's explanation if
    any consensus property fails — convenient in tests of correct
    algorithms. *)
val run_exn :
  ?identities:Amac.Node_id.t array ->
  ?give_n:bool ->
  ?give_diameter:bool ->
  ?crashes:(int * int) list ->
  ?faults:Fault.plan ->
  ?substitute:(now:int -> sender:int -> receiver:int -> 'm -> 'm option) ->
  ?honest:bool array ->
  ?max_time:int ->
  ?track_causal:bool ->
  ?provenance:Obs.Provenance.t ->
  ?record_trace:bool ->
  ?pp_msg:('m -> string) ->
  ?unreliable:Amac.Topology.t ->
  ?topo_deltas:(int * Amac.Topology.delta) list ->
  ?obs:Obs.Metrics.registry ->
  ('s, 'm) Amac.Algorithm.t ->
  topology:Amac.Topology.t ->
  scheduler:Amac.Scheduler.t ->
  inputs:int array ->
  result

(** {1 Workload (input-vector) generators} *)

(** [inputs_all ~n v] — every node starts with [v]. *)
val inputs_all : n:int -> int -> int array

(** [inputs_alternating ~n] — 0,1,0,1,... *)
val inputs_alternating : n:int -> int array

(** [inputs_one_dissent ~n ~dissenter ~value] — everyone holds [1 - value]
    except [dissenter]. *)
val inputs_one_dissent : n:int -> dissenter:int -> value:int -> int array

(** [inputs_random rng ~n] — independent fair coin flips. *)
val inputs_random : Amac.Rng.t -> n:int -> int array

(** [inputs_halves ~n] — first half 0, second half 1 (the partition-argument
    workload). *)
val inputs_halves : n:int -> int array
