type msg = (int * int) list  (* (id, value) pairs, at most pairs_per_msg *)

type state = {
  n : int;
  pairs_per_msg : int;
  known : (int, int) Hashtbl.t;  (* id -> value *)
  mutable queue : (int * int) list;  (* pairs still to forward *)
  mutable sending : bool;
  mutable decided : bool;
}

let pp_msg pairs =
  "{"
  ^ String.concat ","
      (List.map (fun (id, v) -> Printf.sprintf "%d:%d" id v) pairs)
  ^ "}"

let take k list =
  let rec go k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (k - 1) (x :: acc) rest
  in
  go k [] list

let maybe_send st =
  if st.sending || st.queue = [] then []
  else begin
    let batch, rest = take st.pairs_per_msg st.queue in
    st.queue <- rest;
    st.sending <- true;
    [ Amac.Algorithm.Broadcast batch ]
  end

let maybe_decide st =
  if (not st.decided) && Hashtbl.length st.known = st.n then begin
    st.decided <- true;
    let value =
      Hashtbl.fold (fun _ v acc -> min v acc) st.known max_int
    in
    [ Amac.Algorithm.Decide value ]
  end
  else []

let init ~pairs_per_msg (ctx : Amac.Algorithm.ctx) =
  let n =
    match ctx.n with
    | Some n -> n
    | None -> invalid_arg "Flood_gather: requires knowledge of n"
  in
  let me = Amac.Node_id.unique_exn ctx.id in
  let st =
    {
      n;
      pairs_per_msg;
      known = Hashtbl.create (2 * n);
      queue = [ (me, ctx.input) ];
      sending = false;
      decided = false;
    }
  in
  Hashtbl.replace st.known me ctx.input;
  (st, maybe_decide st @ maybe_send st)

let on_receive _ctx st pairs =
  let absorb (id, value) =
    if not (Hashtbl.mem st.known id) then begin
      Hashtbl.replace st.known id value;
      st.queue <- st.queue @ [ (id, value) ]
    end
  in
  List.iter absorb pairs;
  maybe_decide st @ maybe_send st

let on_ack _ctx st =
  st.sending <- false;
  maybe_send st

(* Verification fast path (Algorithm.hooks). [known] is folded in sorted
   key order so insertion history cannot split logically equal states;
   [queue] keeps FIFO order, which is real state (it decides what the next
   batch contains). *)
module F = Amac.Fingerprint

let fp_pair (id, v) acc = acc |> F.int id |> F.int v

let fp_known tbl acc =
  let entries = Hashtbl.fold (fun k v l -> (k, v) :: l) tbl [] in
  F.list fp_pair (List.sort compare entries) acc

let fingerprint st acc =
  acc |> F.int st.n
  |> F.int st.pairs_per_msg
  |> fp_known st.known |> F.list fp_pair st.queue |> F.bool st.sending
  |> F.bool st.decided

let fingerprint_msg pairs acc = F.list fp_pair pairs acc

let clone st = { st with known = Hashtbl.copy st.known }

let hooks = Some { Amac.Algorithm.fingerprint; fingerprint_msg; clone }

let make ?(pairs_per_msg = 2) () =
  if pairs_per_msg < 1 then
    invalid_arg "Flood_gather.make: pairs_per_msg must be >= 1";
  {
    Amac.Algorithm.name = Printf.sprintf "flood-gather(%d)" pairs_per_msg;
    init = init ~pairs_per_msg;
    on_receive;
    on_ack;
    msg_ids = List.length;
    hooks;
  }
