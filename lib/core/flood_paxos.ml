open Paxos_types

(* A single acceptor's (un-aggregated) response, flooded network-wide. *)
type unit_response = {
  responder : int;
  target : int;
  u_pno : pno;
  u_round : round;
  positive : bool;
  prior : prior option;
  committed : pno option;
}

type component =
  | Leader of int
  | Change of { counter : int; origin : int }
  | Proposal of proposer_msg
  | Unit of unit_response
  | Decision of int

type msg = component list

type count = { ids : (int, unit) Hashtbl.t }  (* distinct responders *)

type proposer_phase =
  | Idle
  | Preparing of {
      pno : pno;
      yes : count;
      no : count;
      mutable best_prior : prior option;
    }
  | Proposing of { pno : pno; value : int; yes : count; no : count }

type state = {
  me : int;
  n : int;
  input : int;
  (* leader election + change services, as in wPAXOS *)
  mutable omega : int;
  mutable leader_q : int option;
  mutable lamport : int;
  mutable last_change : int * int;
  mutable change_q : (int * int) option;
  (* proposer *)
  mutable max_tag : int;
  mutable phase : proposer_phase;
  mutable attempts_left : int;
  mutable proposal_q : proposer_msg option;
  mutable best_proposal_seen : (pno * round) option;
  (* acceptor *)
  mutable promised : pno option;
  mutable accepted : prior option;
  mutable responded : (pno * round) option;
  (* response flooding: FIFO of units to forward, dedup on (responder,
     proposition) *)
  mutable unit_q : unit_response list;
  seen_units : (int * pno * round, unit) Hashtbl.t;
  (* decision *)
  mutable decision : int option;
  mutable announced : bool;
  mutable decide_q : int option;
  mutable sending : bool;
}

let majority st = (st.n / 2) + 1

(* Once this many acceptors said no, yes can no longer reach a majority. *)
let fail_threshold st = st.n - majority st + 1

let stamp_compare (ca, oa) (cb, ob) =
  match Int.compare ca cb with 0 -> Int.compare oa ob | c -> c

let new_count () = { ids = Hashtbl.create 8 }

let count_add count responder = Hashtbl.replace count.ids responder ()

let count_size count = Hashtbl.length count.ids

let compose st =
  let components = ref [] in
  (match st.decide_q with
  | Some v ->
      st.decide_q <- None;
      components := Decision v :: !components
  | None -> ());
  (match st.unit_q with
  | unit :: rest ->
      st.unit_q <- rest;
      components := Unit unit :: !components
  | [] -> ());
  (match st.proposal_q with
  | Some p ->
      st.proposal_q <- None;
      components := Proposal p :: !components
  | None -> ());
  (match st.change_q with
  | Some (counter, origin) ->
      st.change_q <- None;
      components := Change { counter; origin } :: !components
  | None -> ());
  (match st.leader_q with
  | Some id ->
      st.leader_q <- None;
      components := Leader id :: !components
  | None -> ());
  !components

let maybe_send st =
  if st.sending then []
  else
    match compose st with
    | [] -> []
    | components ->
        st.sending <- true;
        [ Amac.Algorithm.Broadcast components ]

let finish st =
  let announce =
    match st.decision with
    | Some v when not st.announced ->
        st.announced <- true;
        [ Amac.Algorithm.Decide v ]
    | Some _ | None -> []
  in
  announce @ maybe_send st

let decide st value =
  if st.decision = None then begin
    st.decision <- Some value;
    st.decide_q <- Some value;
    st.phase <- Idle
  end

(* Queue invariant: flood only responses to the current leader's largest
   proposal number (the Θ(n) distinct units per proposition remain). *)
let prune_unit_q st =
  st.unit_q <- List.filter (fun u -> u.target = st.omega) st.unit_q;
  let largest =
    List.fold_left
      (fun acc u ->
        match acc with
        | None -> Some u.u_pno
        | Some best -> if pno_lt best u.u_pno then Some u.u_pno else acc)
      None st.unit_q
  in
  match largest with
  | None -> ()
  | Some best ->
      st.unit_q <- List.filter (fun u -> compare_pno u.u_pno best = 0) st.unit_q

let rec generate_proposal st =
  if st.decision = None && st.omega = st.me then begin
    st.max_tag <- st.max_tag + 1;
    let pno = { tag = st.max_tag; proposer = st.me } in
    st.phase <-
      Preparing { pno; yes = new_count (); no = new_count (); best_prior = None };
    let message = Prepare pno in
    st.proposal_q <- Some message;
    st.best_proposal_seen <- Some (pno, Prepare_round);
    self_respond st message
  end

and change_updateq st stamp =
  st.change_q <- Some stamp;
  if st.omega = st.me && st.decision = None then begin
    st.attempts_left <- 1;
    generate_proposal st
  end

and local_change st =
  st.lamport <- st.lamport + 1;
  let stamp = (st.lamport, st.me) in
  st.last_change <- stamp;
  change_updateq st stamp

and proposition_failed st =
  if st.omega = st.me && st.decision = None then begin
    if st.attempts_left > 0 then begin
      st.attempts_left <- st.attempts_left - 1;
      generate_proposal st
    end
    else local_change st
  end
  else st.phase <- Idle

and start_propose st ~pno ~best_prior =
  let value =
    match best_prior with Some prior -> prior.value | None -> st.input
  in
  st.phase <- Proposing { pno; value; yes = new_count (); no = new_count () };
  let message = Propose { pno; value } in
  st.proposal_q <- Some message;
  st.best_proposal_seen <- Some (pno, Propose_round);
  self_respond st message

and count_unit st (u : unit_response) =
  match st.phase with
  | Preparing p when compare_pno p.pno u.u_pno = 0 && u.u_round = Prepare_round
    ->
      if u.positive then begin
        count_add p.yes u.responder;
        p.best_prior <- max_prior p.best_prior u.prior;
        if count_size p.yes >= majority st then
          start_propose st ~pno:p.pno ~best_prior:p.best_prior
      end
      else begin
        count_add p.no u.responder;
        (match u.committed with
        | Some committed -> st.max_tag <- max st.max_tag committed.tag
        | None -> ());
        if count_size p.no >= fail_threshold st then proposition_failed st
      end
  | Proposing p when compare_pno p.pno u.u_pno = 0 && u.u_round = Propose_round
    ->
      if u.positive then begin
        count_add p.yes u.responder;
        if count_size p.yes >= majority st then decide st p.value
      end
      else begin
        count_add p.no u.responder;
        (match u.committed with
        | Some committed -> st.max_tag <- max st.max_tag committed.tag
        | None -> ());
        if count_size p.no >= fail_threshold st then proposition_failed st
      end
  | Idle | Preparing _ | Proposing _ -> ()

and acceptor_respond st (message : proposer_msg) =
  let pno = pno_of_proposer_msg message in
  let ok = match st.promised with None -> true | Some p -> pno_le p pno in
  let round, positive, prior, committed =
    match message with
    | Prepare _ ->
        if ok then begin
          st.promised <- Some pno;
          (Prepare_round, true, st.accepted, None)
        end
        else (Prepare_round, false, None, st.promised)
    | Propose { value; _ } ->
        if ok then begin
          st.promised <- Some pno;
          st.accepted <- Some { pno; value };
          (Propose_round, true, None, None)
        end
        else (Propose_round, false, None, st.promised)
  in
  st.responded <- Some (pno, round);
  (round, positive, prior, committed)

and self_respond st (message : proposer_msg) =
  let pno = pno_of_proposer_msg message in
  let round, positive, prior, committed = acceptor_respond st message in
  count_unit st
    {
      responder = st.me;
      target = st.me;
      u_pno = pno;
      u_round = round;
      positive;
      prior;
      committed;
    }

let on_leader st id =
  if id > st.omega then begin
    st.omega <- id;
    st.leader_q <- Some id;
    st.phase <- Idle;
    (match st.proposal_q with
    | Some p when (pno_of_proposer_msg p).proposer <> st.omega ->
        st.proposal_q <- None
    | Some _ | None -> ());
    prune_unit_q st;
    local_change st
  end

let on_change st ~counter ~origin =
  st.lamport <- max st.lamport counter;
  let stamp = (counter, origin) in
  if stamp_compare stamp st.last_change > 0 then begin
    st.last_change <- stamp;
    change_updateq st stamp
  end

let proposition_gt a b =
  match b with None -> true | Some b -> compare_proposition a b > 0

let enqueue_unit st (u : unit_response) =
  let key = (u.responder, u.u_pno, u.u_round) in
  if not (Hashtbl.mem st.seen_units key) then begin
    Hashtbl.replace st.seen_units key ();
    st.unit_q <- st.unit_q @ [ u ];
    prune_unit_q st
  end

let on_proposal st (message : proposer_msg) =
  let pno = pno_of_proposer_msg message in
  st.max_tag <- max st.max_tag pno.tag;
  if pno.proposer = st.omega && pno.proposer <> st.me then begin
    let round =
      match message with Prepare _ -> Prepare_round | Propose _ -> Propose_round
    in
    if proposition_gt (pno, round) st.best_proposal_seen then begin
      st.best_proposal_seen <- Some (pno, round);
      st.proposal_q <- Some message
    end;
    if proposition_gt (pno, round) st.responded then begin
      let round, positive, prior, committed = acceptor_respond st message in
      enqueue_unit st
        {
          responder = st.me;
          target = pno.proposer;
          u_pno = pno;
          u_round = round;
          positive;
          prior;
          committed;
        }
    end
  end

let on_unit st (u : unit_response) =
  if u.target = st.me then count_unit st u
  else if u.target = st.omega then enqueue_unit st u

let on_decision st value =
  if st.decision = None then begin
    st.decision <- Some value;
    st.decide_q <- Some value;
    st.phase <- Idle
  end

let init (ctx : Amac.Algorithm.ctx) =
  let n =
    match ctx.n with
    | Some n -> n
    | None -> invalid_arg "Flood_paxos: requires knowledge of n"
  in
  let me = Amac.Node_id.unique_exn ctx.id in
  let st =
    {
      me;
      n;
      input = ctx.input;
      omega = me;
      leader_q = Some me;
      lamport = 0;
      last_change = (-1, -1);
      change_q = None;
      max_tag = 0;
      phase = Idle;
      attempts_left = 1;
      proposal_q = None;
      best_proposal_seen = None;
      promised = None;
      accepted = None;
      responded = None;
      unit_q = [];
      seen_units = Hashtbl.create 64;
      decision = None;
      announced = false;
      decide_q = None;
      sending = false;
    }
  in
  local_change st;
  (st, finish st)

let on_receive _ctx st (components : msg) =
  let rank = function
    | Leader _ -> 0
    | Change _ -> 1
    | Proposal _ -> 2
    | Unit _ -> 3
    | Decision _ -> 4
  in
  let ordered =
    List.sort (fun a b -> Int.compare (rank a) (rank b)) components
  in
  List.iter
    (fun component ->
      match component with
      | Leader id -> on_leader st id
      | Change { counter; origin } -> on_change st ~counter ~origin
      | Proposal p -> on_proposal st p
      | Unit u -> on_unit st u
      | Decision v -> on_decision st v)
    ordered;
  finish st

let on_ack _ctx st =
  st.sending <- false;
  finish st

let component_ids = function
  | Leader _ -> 1
  | Change _ -> 1
  | Proposal p -> proposer_msg_ids p
  | Unit u ->
      3
      + (match u.prior with None -> 0 | Some _ -> 1)
      + (match u.committed with None -> 0 | Some _ -> 1)
  | Decision _ -> 0

let msg_ids components =
  List.fold_left (fun acc c -> acc + component_ids c) 0 components

let pp_component = function
  | Leader id -> Printf.sprintf "leader(%d)" id
  | Change { counter; origin } -> Printf.sprintf "change(%d@%d)" counter origin
  | Proposal p -> pp_proposer_msg p
  | Unit u ->
      Printf.sprintf "unit{from=%d;tgt=%d;%s;%s}" u.responder u.target
        (pp_pno u.u_pno)
        (if u.positive then "yes" else "no")
  | Decision v -> Printf.sprintf "decide(%d)" v

let pp_msg components = String.concat "+" (List.map pp_component components)

(* Verification fast path (Algorithm.hooks). The [count] sets inside the
   proposer phase and [seen_units] are folded in sorted order (responder
   ids, resp. (responder, pno, round) keys under polymorphic compare) so
   insertion history cannot split logically equal states. [unit_q] keeps
   FIFO order — it decides which unit the next broadcast carries. *)
module F = Amac.Fingerprint

let fp_pno ({ tag; proposer } : pno) acc = acc |> F.int tag |> F.int proposer

let fp_prior ({ pno; value } : prior) acc = acc |> fp_pno pno |> F.int value

let fp_round r acc =
  F.int (match r with Prepare_round -> 0 | Propose_round -> 1) acc

let fp_proposer_msg m acc =
  match m with
  | Prepare pno -> acc |> F.int 1 |> fp_pno pno
  | Propose { pno; value } -> acc |> F.int 2 |> fp_pno pno |> F.int value

let fp_unit (u : unit_response) acc =
  acc |> F.int u.responder |> F.int u.target |> fp_pno u.u_pno
  |> fp_round u.u_round |> F.bool u.positive
  |> F.option fp_prior u.prior
  |> F.option fp_pno u.committed

let fp_count count acc =
  let ids = Hashtbl.fold (fun id () l -> id :: l) count.ids [] in
  F.list F.int (List.sort compare ids) acc

let fp_phase phase acc =
  match phase with
  | Idle -> F.int 0 acc
  | Preparing p ->
      acc |> F.int 1 |> fp_pno p.pno |> fp_count p.yes |> fp_count p.no
      |> F.option fp_prior p.best_prior
  | Proposing p ->
      acc |> F.int 2 |> fp_pno p.pno |> F.int p.value |> fp_count p.yes
      |> fp_count p.no

let fp_seen_units tbl acc =
  let keys = Hashtbl.fold (fun k () l -> k :: l) tbl [] in
  F.list
    (fun (responder, pno, round) acc ->
      acc |> F.int responder |> fp_pno pno |> fp_round round)
    (List.sort compare keys) acc

let fp_component c acc =
  match c with
  | Leader id -> acc |> F.int 1 |> F.int id
  | Change { counter; origin } -> acc |> F.int 2 |> F.int counter |> F.int origin
  | Proposal p -> acc |> F.int 3 |> fp_proposer_msg p
  | Unit u -> acc |> F.int 4 |> fp_unit u
  | Decision v -> acc |> F.int 5 |> F.int v

let fp_msg (components : msg) acc = F.list fp_component components acc

let fingerprint st acc =
  acc |> F.int st.me |> F.int st.n |> F.int st.input |> F.int st.omega
  |> F.option F.int st.leader_q
  |> F.int st.lamport
  |> (fun acc ->
       let a, b = st.last_change in
       acc |> F.int a |> F.int b)
  |> F.option (fun (a, b) acc -> acc |> F.int a |> F.int b) st.change_q
  |> F.int st.max_tag |> fp_phase st.phase |> F.int st.attempts_left
  |> F.option fp_proposer_msg st.proposal_q
  |> F.option
       (fun (pno, round) acc -> acc |> fp_pno pno |> fp_round round)
       st.best_proposal_seen
  |> F.option fp_pno st.promised
  |> F.option fp_prior st.accepted
  |> F.option
       (fun (pno, round) acc -> acc |> fp_pno pno |> fp_round round)
       st.responded
  |> F.list fp_unit st.unit_q |> fp_seen_units st.seen_units
  |> F.option F.int st.decision
  |> F.bool st.announced
  |> F.option F.int st.decide_q
  |> F.bool st.sending

let clone_count count = { ids = Hashtbl.copy count.ids }

let clone st =
  {
    st with
    phase =
      (match st.phase with
      | Idle -> Idle
      | Preparing p ->
          Preparing
            {
              pno = p.pno;
              yes = clone_count p.yes;
              no = clone_count p.no;
              best_prior = p.best_prior;
            }
      | Proposing p ->
          Proposing
            {
              pno = p.pno;
              value = p.value;
              yes = clone_count p.yes;
              no = clone_count p.no;
            });
    seen_units = Hashtbl.copy st.seen_units;
  }

let hooks = Some { Amac.Algorithm.fingerprint; fingerprint_msg = fp_msg; clone }

let make () =
  {
    Amac.Algorithm.name = "flood-paxos";
    init;
    on_receive;
    on_ack;
    msg_ids;
    hooks;
  }
