type result = {
  outcome : Amac.Engine.outcome;
  report : Checker.report;
  degradation : Checker.degradation;
  decision_time : int option;
}

(* Verdict-level metrics: the checker's degradation view (safety as a 0/1
   gauge, liveness as measured quantities), labelled by algorithm so sweeps
   over several algorithms into one registry stay separable. *)
let record_degradation ~obs ~algorithm (degradation : Checker.degradation) =
  let gauge name = Obs.Metrics.gauge obs ~labels:[ ("algorithm", algorithm) ] name in
  Obs.Metrics.set (gauge "checker_safe")
    (if degradation.Checker.safe then 1.0 else 0.0);
  Obs.Metrics.set
    (gauge "checker_decided_fraction")
    degradation.Checker.decided_fraction;
  Obs.Metrics.set
    (gauge "checker_max_incarnation")
    (float_of_int degradation.Checker.max_incarnation);
  match degradation.Checker.max_decide_time with
  | Some t -> Obs.Metrics.set (gauge "checker_max_decide_time") (float_of_int t)
  | None -> ()

let run ?identities ?give_n ?give_diameter ?(crashes = []) ?faults ?substitute
    ?honest ?max_time ?track_causal ?provenance ?record_trace ?pp_msg
    ?unreliable ?topo_deltas ?obs algorithm ~topology ~scheduler ~inputs =
  (* A fault plan's crash/recovery schedule merges with the legacy
     [?crashes] list; the merged schedule is validated by the engine. *)
  let crashes, recoveries, drop, stutter =
    match faults with
    | None -> (crashes, [], None, None)
    | Some plan ->
        let compiled =
          Fault.compile ~n:(Amac.Topology.size topology) plan
        in
        ( crashes @ compiled.Fault.crashes,
          compiled.Fault.recoveries,
          compiled.Fault.drop,
          compiled.Fault.stutter )
  in
  (match (obs, faults) with
  | Some reg, Some plan -> Fault.record ~obs:reg plan
  | (Some _ | None), _ -> ());
  let outcome =
    Amac.Engine.run ?identities ?give_n ?give_diameter ~crashes ~recoveries
      ?drop ?stutter ?substitute ?max_time ?track_causal ?provenance
      ?record_trace ?pp_msg ?unreliable ?topo_deltas ?obs algorithm ~topology
      ~scheduler ~inputs
  in
  let degradation = Checker.degrade ?honest ~inputs outcome in
  (match obs with
  | Some reg ->
      record_degradation ~obs:reg ~algorithm:algorithm.Amac.Algorithm.name
        degradation
  | None -> ());
  {
    outcome;
    report = Checker.check ?honest ~inputs outcome;
    degradation;
    decision_time = Amac.Engine.latest_decision outcome;
  }

let run_exn ?identities ?give_n ?give_diameter ?crashes ?faults ?substitute
    ?honest ?max_time ?track_causal ?provenance ?record_trace ?pp_msg
    ?unreliable ?topo_deltas ?obs algorithm ~topology ~scheduler ~inputs =
  let result =
    run ?identities ?give_n ?give_diameter ?crashes ?faults ?substitute ?honest
      ?max_time ?track_causal ?provenance ?record_trace ?pp_msg ?unreliable
      ?topo_deltas ?obs algorithm ~topology ~scheduler ~inputs
  in
  if not (Checker.ok result.report) then
    failwith
      (Printf.sprintf "%s on %s under %s: %s" algorithm.Amac.Algorithm.name
         (Format.asprintf "%a" Amac.Topology.pp topology)
         scheduler.Amac.Scheduler.name
         (String.concat "; " result.report.Checker.problems));
  result

let inputs_all ~n v = Array.make n v

let inputs_alternating ~n = Array.init n (fun i -> i mod 2)

let inputs_one_dissent ~n ~dissenter ~value =
  Array.init n (fun i -> if i = dissenter then value else 1 - value)

let inputs_random rng ~n =
  Array.init n (fun _ -> if Amac.Rng.bool rng then 1 else 0)

let inputs_halves ~n = Array.init n (fun i -> if i < n / 2 then 0 else 1)
