type result = {
  outcome : Amac.Engine.outcome;
  report : Checker.report;
  degradation : Checker.degradation;
  decision_time : int option;
}

let run ?identities ?give_n ?give_diameter ?(crashes = []) ?faults ?max_time
    ?track_causal ?record_trace ?pp_msg ?unreliable algorithm ~topology
    ~scheduler ~inputs =
  (* A fault plan's crash/recovery schedule merges with the legacy
     [?crashes] list; the merged schedule is validated by the engine. *)
  let crashes, recoveries, drop, stutter =
    match faults with
    | None -> (crashes, [], None, None)
    | Some plan ->
        let compiled =
          Fault.compile ~n:(Amac.Topology.size topology) plan
        in
        ( crashes @ compiled.Fault.crashes,
          compiled.Fault.recoveries,
          compiled.Fault.drop,
          compiled.Fault.stutter )
  in
  let outcome =
    Amac.Engine.run ?identities ?give_n ?give_diameter ~crashes ~recoveries
      ?drop ?stutter ?max_time ?track_causal ?record_trace ?pp_msg ?unreliable
      algorithm ~topology ~scheduler ~inputs
  in
  {
    outcome;
    report = Checker.check ~inputs outcome;
    degradation = Checker.degrade ~inputs outcome;
    decision_time = Amac.Engine.latest_decision outcome;
  }

let run_exn ?identities ?give_n ?give_diameter ?crashes ?faults ?max_time
    ?track_causal ?record_trace ?pp_msg ?unreliable algorithm ~topology
    ~scheduler ~inputs =
  let result =
    run ?identities ?give_n ?give_diameter ?crashes ?faults ?max_time
      ?track_causal ?record_trace ?pp_msg ?unreliable algorithm ~topology
      ~scheduler ~inputs
  in
  if not (Checker.ok result.report) then
    failwith
      (Printf.sprintf "%s on %s under %s: %s" algorithm.Amac.Algorithm.name
         (Format.asprintf "%a" Amac.Topology.pp topology)
         scheduler.Amac.Scheduler.name
         (String.concat "; " result.report.Checker.problems));
  result

let inputs_all ~n v = Array.make n v

let inputs_alternating ~n = Array.init n (fun i -> i mod 2)

let inputs_one_dissent ~n ~dissenter ~value =
  Array.init n (fun i -> if i = dissenter then value else 1 - value)

let inputs_random rng ~n =
  Array.init n (fun _ -> if Amac.Rng.bool rng then 1 else 0)

let inputs_halves ~n = Array.init n (fun i -> if i < n / 2 then 0 else 1)
