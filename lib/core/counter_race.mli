(** Counter-race binary consensus — adapted from Newport & Robinson,
    "Fault-Tolerant Consensus with an Abstract MAC Layer" (DISC 2018,
    arXiv:1810.02848), the crash-tolerant successor to the source paper.

    Their insight: acknowledged broadcast lets nodes race {e counters}
    instead of collecting quorums, so the algorithm needs {e no knowledge
    of n} and never waits on a dead node — it is crash-stop tolerant for
    any number of crashes in single-hop networks. Each node keeps a pair
    [(c, v)] (counter, preferred value):

    - it rebroadcasts [(c, v)] continuously;
    - a received strictly larger pair (lexicographic) is adopted;
    - when a broadcast is acked with the pair unchanged — i.e. the pair
      survived a full acknowledged-broadcast cycle as the local maximum —
      the counter increments;
    - it tracks [maxSeen(w)], the largest counter observed attached to each
      value [w], and decides [v] once [c >= maxSeen(1 - v) + margin]: the
      rival value has been left so far behind that (by the MAC layer's
      delivery guarantee) no rival pair can still overtake undetected.

    This is a simplified transplant, not the paper's full protocol; the
    decision [margin] is the safety knob. [margin = 3] is the default and
    survives our fuzz and exhaustive-exploration campaigns; [margin = 2]
    is {e demonstrably unsafe} — the fuzzer exhibits an agreement
    violation (see test_counter_race) — which is why the knob is exposed:
    a known-bad setting makes the verification harness prove it is
    actually looking. Tolerates crash-stop faults only (an amnesiac
    restart re-enters the race from [c = 0] and re-converges, but
    mid-broadcast crash interleavings under recovery are outside the
    safety argument — the matrix pins what holds empirically).

    Binary consensus: inputs must be 0 or 1.
    @raise Invalid_argument at init on a non-binary input. *)

type state

type msg = { sender : int; c : int; v : int }
(** Exposed (not abstract) so the Byzantine adapter in [lib/byz] can forge
    and mutate payloads — the attack surface is precisely [c] inflation and
    [v] flips. *)

(** [make ?margin ()] — [margin] is the decision threshold distance
    (default 3; 2 is known-unsafe, see above). *)
val make : ?margin:int -> unit -> (state, msg) Amac.Algorithm.t

val pp_msg : msg -> string
