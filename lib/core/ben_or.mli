(** Randomized binary consensus in the abstract MAC layer model — the
    paper's third future-work direction (Sec 5): "consider randomized
    algorithms, which might ... circumvent our crash failure ... lower
    bounds".

    This is Ben-Or's classic two-vote-per-round protocol transplanted onto
    acknowledged local broadcast, for {e single hop} networks with knowledge
    of n, tolerating up to [f = ceil(n/2) - 1] crash failures (i.e. any
    minority). Per round [r]:

    + {b report}: broadcast [(r, value)]; wait for [n - f] round-[r]
      reports (own included). If more than [n/2] carry the same [v],
      propose [v]; otherwise propose [?].
    + {b propose}: broadcast the proposal; wait for [n - f] round-[r]
      proposals. If [f + 1] or more propose the same [v]: {e decide} [v].
      If at least one proposes [v]: adopt [v]. Otherwise adopt a coin flip.

    Waiting for only [n - f] messages is what makes it crash-tolerant — it
    never blocks on a dead node, which is exactly where deterministic
    two-phase consensus dies (Thm 3.2 / experiment E7). Agreement and
    validity are deterministic; termination holds with probability 1 and in
    expected O(1) rounds for constant f (exponential in n in the worst
    case, as for classic Ben-Or).

    Coins are drawn from a per-node deterministic stream seeded by
    [(seed, node id)], so runs stay replayable. Our schedulers fix the whole
    schedule up front, i.e. the adversary is {e oblivious} to coin flips —
    the setting where Ben-Or's expected round count is meaningful.

    Nodes that decide keep echoing a [Decided] message so that laggards
    (who can no longer assemble [n - f] votes once others stop) still
    terminate. *)

type vote =
  | Report of { round : int; value : int }
  | Proposal of { round : int; value : int option }  (** [None] = "?" *)
  | Decided of int

type msg = { sender : int; vote : vote }
(** Exposed (not abstract) so the Byzantine adapter in [lib/byz] can forge
    votes — flipped reports, fake [Decided] claims — which Ben-Or, built
    for crash faults only, is {e not} expected to survive. *)

type state

(** [make ~seed ()] — [seed] drives every node's coin stream.
    @raise Invalid_argument at init if [ctx.n] is absent. *)
val make : seed:int -> unit -> (state, msg) Amac.Algorithm.t

val pp_msg : msg -> string
