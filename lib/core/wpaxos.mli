(** Wireless PAXOS (Sec 4.2): consensus in multihop networks in
    O(D · F_ack) time, assuming unique ids and knowledge of n.

    wPAXOS combines the classic PAXOS proposer/acceptor logic with four
    support services, each with its own outgoing-message queue, multiplexed
    onto the single MAC-layer channel by a broadcast service (the paper's
    Algorithms 2–5):

    - {b leader election}: flood the maximum id; eventually stabilises
      network-wide to the same leader Ω.
    - {b tree building}: Bellman–Ford iterative refinement maintaining, for
      every potential root, a shortest-path tree — with the current leader's
      search messages prioritised so the leader's tree completes soon after
      the election stabilises.
    - {b change}: notifies proposers when to generate a fresh proposal
      number; guarantees the eventual leader proposes {e after} the other
      services stabilise, but only Θ(1) more times.
    - {b broadcast}: dequeues at most one message per service and packs them
      into a single O(1)-ids broadcast.

    Acceptor responses are routed up the leader's tree and {e aggregated}:
    same-kind responses to the same proposition merge into a count (keeping
    only the highest-numbered embedded prior proposal), which is what brings
    response collection from Θ(n · F_ack) down to O(D · F_ack). Lemma 4.2
    (counts never exceed the number of generating acceptors) can be checked
    at runtime via {!instrument}.

    Deviations from the paper, both documented in DESIGN.md:
    - The change service's [time stamp()] is a Lamport clock (the model has
      no global clocks); stamps are (counter, id) pairs joined on receipt.
    - Because Lamport stamps do not totally order concurrent changes the way
      real timestamps do, a proposer that exhausts its two attempts for a
      notification treats a majority-reject as a fresh local change (flooded
      like any other). This preserves the paper's Θ(1)-new-proposals-after-
      stabilisation property and removes a liveness gap: rejections bump the
      tag above the largest committed number, so retries terminate.

    {b Hardening} ([retransmit], on by default; see DESIGN.md "Fault model"):
    the paper assumes a reliable MAC layer and fail-stop crashes, under
    which wPAXOS as written is live. Under [Fault] plans (bounded loss
    windows, partitions, crash-recovery) it needs three additions, all
    clocked by the node's own acks — the only clock in the model:
    - {e heartbeats}: an undecided node broadcasts on every ack (a [Leader]
      component carrying the leader's heartbeat count), keeping its clock
      ticking; bounded by a patience budget refilled on observable protocol
      progress, so runs where consensus is impossible still quiesce.
    - {e leader re-election on silence}: followers suspect a leader whose
      heartbeat count stalls for [4n+16] acks and fall back to the largest
      unsuspected id; a heartbeat advancing past the suspicion point
      unsuspects (false suspicion under loss heals itself).
    - {e re-proposal with backoff}: a leader whose proposition stops making
      counted progress issues a {e fresh} proposal number (exponential
      backoff, [2n+8] acks and up). Re-sending aggregated {e responses}
      could double-count at the proposer (responses carry counts, not ids),
      so recovery always goes through a new proposition, which every
      acceptor answers exactly once — classic-PAXOS-safe.
    A decided node answers any heartbeat it hears with its decision, which
    is how recovered (amnesiac) or starved nodes re-learn the outcome. With
    [~retransmit:false] the algorithm is exactly the paper's: safe under
    any plan, but a single lost delivery can end liveness — the fault-plan
    fuzzer finds and shrinks such schedules (see [bin/mcheck_fuzz]
    [MCHECK_FAULTS] mode). *)

type component =
  | Leader of { id : int; hb : int }
      (** Alg 2: candidate leader id; [hb] is the candidate's heartbeat
          count (always 0 when hardening is off) *)
  | Change of { counter : int; origin : int }  (** Alg 3: Lamport stamp *)
  | Search of { root : int; hops : int; sender : int }  (** Alg 4 *)
  | Proposal of Paxos_types.proposer_msg  (** flooded prepare/propose *)
  | Response of Paxos_types.response  (** tree-routed acceptor response *)
  | Decision of int  (** flooded decide *)

(** One MAC-layer broadcast: at most one component per service queue. *)
type msg = component list

type state

(** Per-run instrumentation for checking the Lemma 4.2 conservation
    invariant: for every proposition, the count the proposer accumulates
    never exceeds the number of acceptors that generated an affirmative
    response. Create one per run and share it across nodes via {!make}. *)
module Instrument : sig
  type t

  val create : unit -> t

  (** [violations t] lists propositions for which counted > generated —
      always [] unless aggregation is broken. Each entry is
      [(pno, round, generated, counted)]. *)
  val violations : t -> (Paxos_types.pno * Paxos_types.round * int * int) list

  (** [generated t] / [counted t] — totals across all propositions. *)
  val generated : t -> int

  val counted : t -> int

  (** [max_tag t] — largest proposal-number tag any acceptor responded to;
      Lemma 4.4 says this stays polynomial in n. *)
  val max_tag : t -> int
end

(** [make ()] builds a fresh wPAXOS instance (create one per run: the
    instrument, if any, is shared mutable state).

    @param leader_priority Alg 4's move-the-leader's-search-to-the-front
      optimisation (default [true]; disable for the E9 ablation).
    @param aggregate merge acceptor responses in queues (default [true];
      disable for the E9 ablation — counts remain correct, one entry each).
    @param quorum override the acceptance threshold (default ⌊n/2⌋ + 1).
      This realises the paper's footnote 1: wPAXOS "still works even if
      provided only good enough knowledge of n to recognize a majority" —
      any [quorum] with n/2 < quorum <= n preserves correctness (quorums
      intersect and are live). A quorum of at most n/2 breaks quorum
      intersection and a long partition can then split the decision; see
      [test_wpaxos.ml] for the executable counterexample.
    @param instrument attach a Lemma 4.2 checker.
    @param retransmit fault hardening — heartbeats, silence-based leader
      re-election, fresh-proposal retransmission with exponential backoff
      (default [true]; disable to get the paper's original protocol, which
      the fault-plan fuzzer can break for liveness).
    @param patience the ◇P detector's own-ack silence budget before the
      leader is suspected (default [4n + 16]; see {!Fd}).
    @param backoff detector patience multiplier applied on every cleared
      (false) suspicion (default [1] = fixed patience, the pre-[Fd]
      behavior, bit-for-bit).
    @raise Invalid_argument if [quorum < 1], [patience < 1] or
      [backoff < 1]. *)
val make :
  ?leader_priority:bool ->
  ?aggregate:bool ->
  ?quorum:int ->
  ?instrument:Instrument.t ->
  ?retransmit:bool ->
  ?patience:int ->
  ?backoff:int ->
  unit ->
  (state, msg) Amac.Algorithm.t

val pp_msg : msg -> string
