type vote =
  | Report of { round : int; value : int }
  | Proposal of { round : int; value : int option }  (* None = "?" *)
  | Decided of int

type msg = { sender : int; vote : vote }

type phase = Reporting | Proposing

type state = {
  me : int;
  n : int;
  f : int;  (* crash budget: any minority *)
  coins : Amac.Rng.t;
  mutable round : int;
  mutable phase : phase;
  mutable value : int;
  (* votes.(0) = reports, votes.(1) = proposals; per (round, sender). *)
  reports : (int * int, int) Hashtbl.t;  (* (round, sender) -> value *)
  proposals : (int * int, int option) Hashtbl.t;
  mutable outbox : vote list;
  mutable sending : bool;
  mutable decision : int option;
  mutable announced : bool;
  mutable echoed_decide : bool;
}

let pp_vote = function
  | Report { round; value } -> Printf.sprintf "report(r%d,v=%d)" round value
  | Proposal { round; value = Some v } -> Printf.sprintf "propose(r%d,v=%d)" round v
  | Proposal { round; value = None } -> Printf.sprintf "propose(r%d,?)" round
  | Decided v -> Printf.sprintf "decided(%d)" v

let pp_msg m = Printf.sprintf "%d:%s" m.sender (pp_vote m.vote)

let send st vote = st.outbox <- st.outbox @ [ vote ]

let maybe_broadcast st =
  match st.outbox with
  | vote :: rest when not st.sending ->
      st.outbox <- rest;
      st.sending <- true;
      [ Amac.Algorithm.Broadcast { sender = st.me; vote } ]
  | _ -> []

let decide st value =
  if st.decision = None then begin
    st.decision <- Some value;
    (* Echo once so nodes stuck waiting for n - f votes can finish. *)
    if not st.echoed_decide then begin
      st.echoed_decide <- true;
      send st (Decided value)
    end
  end

let quorum st = st.n - st.f  (* > n/2 since f < n/2 *)

let round_votes tbl round =
  Hashtbl.fold
    (fun (r, _) value acc -> if r = round then value :: acc else acc)
    tbl []

let start_round st =
  st.phase <- Reporting;
  Hashtbl.replace st.reports (st.round, st.me) st.value;
  send st (Report { round = st.round; value = st.value })

(* Check whether the current wait is satisfied; loops because stored
   future-round votes can satisfy several transitions at once. *)
let rec advance st =
  if st.decision = None then
    match st.phase with
    | Reporting ->
        let votes = round_votes st.reports st.round in
        if List.length votes >= quorum st then begin
          let count v = List.length (List.filter (fun x -> x = v) votes) in
          let proposal =
            if 2 * count 0 > st.n then Some 0
            else if 2 * count 1 > st.n then Some 1
            else None
          in
          st.phase <- Proposing;
          Hashtbl.replace st.proposals (st.round, st.me) proposal;
          send st (Proposal { round = st.round; value = proposal });
          advance st
        end
    | Proposing ->
        let votes = round_votes st.proposals st.round in
        if List.length votes >= quorum st then begin
          let count v =
            List.length (List.filter (fun x -> x = Some v) votes)
          in
          let c0 = count 0 and c1 = count 1 in
          if c0 >= st.f + 1 then decide st 0
          else if c1 >= st.f + 1 then decide st 1
          else begin
            if c0 > 0 then st.value <- 0
            else if c1 > 0 then st.value <- 1
            else st.value <- (if Amac.Rng.bool st.coins then 1 else 0);
            st.round <- st.round + 1;
            start_round st;
            advance st
          end
        end

let init ~seed (ctx : Amac.Algorithm.ctx) =
  let n =
    match ctx.n with
    | Some n -> n
    | None -> invalid_arg "Ben_or: requires knowledge of n"
  in
  let me = Amac.Node_id.unique_exn ctx.id in
  let st =
    {
      me;
      n;
      f = (if n <= 2 then 0 else (n - 1) / 2);
      coins = Amac.Rng.create (Hashtbl.hash (seed, me));
      round = 0;
      phase = Reporting;
      value = ctx.input;
      reports = Hashtbl.create 64;
      proposals = Hashtbl.create 64;
      outbox = [];
      sending = false;
      decision = None;
      announced = false;
      echoed_decide = false;
    }
  in
  start_round st;
  advance st;
  let announce =
    match st.decision with
    | Some v ->
        st.announced <- true;
        [ Amac.Algorithm.Decide v ]
    | None -> []
  in
  (st, announce @ maybe_broadcast st)

let finish st =
  let announce =
    match st.decision with
    | Some v when not st.announced ->
        st.announced <- true;
        [ Amac.Algorithm.Decide v ]
    | Some _ | None -> []
  in
  announce @ maybe_broadcast st

let on_receive _ctx st { sender; vote } =
  (match vote with
  | Report { round; value } ->
      if not (Hashtbl.mem st.reports (round, sender)) then
        Hashtbl.replace st.reports (round, sender) value
  | Proposal { round; value } ->
      if not (Hashtbl.mem st.proposals (round, sender)) then
        Hashtbl.replace st.proposals (round, sender) value
  | Decided v -> decide st v);
  advance st;
  finish st

let on_ack _ctx st =
  st.sending <- false;
  finish st

let msg_ids _ = 1

(* Verification fast path (Algorithm.hooks). Vote tables are folded in
   sorted key order, so two states whose tables carry the same bindings in
   different insertion orders fingerprint equal — strictly better
   deduplication than the Marshal fallback, which keys on layout. *)
module F = Amac.Fingerprint

let fp_vote vote acc =
  match vote with
  | Report { round; value } -> acc |> F.int 1 |> F.int round |> F.int value
  | Proposal { round; value } ->
      acc |> F.int 2 |> F.int round |> F.option F.int value
  | Decided v -> acc |> F.int 3 |> F.int v

let fp_msg { sender; vote } acc = acc |> F.int sender |> fp_vote vote

let fp_tbl fp_value tbl acc =
  let entries = Hashtbl.fold (fun k v l -> (k, v) :: l) tbl [] in
  let entries = List.sort compare entries in
  F.list
    (fun ((round, sender), v) acc ->
      acc |> F.int round |> F.int sender |> fp_value v)
    entries acc

let fingerprint st acc =
  acc |> F.int st.me |> F.int st.n |> F.int st.f
  |> Amac.Rng.fingerprint st.coins
  |> F.int st.round
  |> F.int (match st.phase with Reporting -> 0 | Proposing -> 1)
  |> F.int st.value
  |> fp_tbl F.int st.reports
  |> fp_tbl (F.option F.int) st.proposals
  |> F.list fp_vote st.outbox |> F.bool st.sending
  |> F.option F.int st.decision
  |> F.bool st.announced |> F.bool st.echoed_decide

let clone st =
  {
    st with
    coins = Amac.Rng.copy st.coins;
    reports = Hashtbl.copy st.reports;
    proposals = Hashtbl.copy st.proposals;
  }

let hooks = Some { Amac.Algorithm.fingerprint; fingerprint_msg = fp_msg; clone }

let make ~seed () =
  {
    Amac.Algorithm.name = Printf.sprintf "ben-or(seed=%d)" seed;
    init = init ~seed;
    on_receive;
    on_ack;
    msg_ids;
    hooks;
  }
