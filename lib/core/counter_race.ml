type msg = { sender : int; c : int; v : int }

type state = {
  me : int;
  margin : int;
  mutable c : int;
  mutable v : int;
  max_seen : int array;  (* per value in {0,1}; -1 = never seen *)
  mutable inflight : (int * int) option;  (* (c, v) when the broadcast left *)
  mutable decision : int option;
  mutable announced : bool;
}

let pp_msg m = Printf.sprintf "%d:(c=%d,v=%d)" m.sender m.c m.v

let maybe_decide st =
  if st.decision = None && st.c >= st.max_seen.(1 - st.v) + st.margin then
    st.decision <- Some st.v

let broadcast st =
  st.inflight <- Some (st.c, st.v);
  [ Amac.Algorithm.Broadcast { sender = st.me; c = st.c; v = st.v } ]

let announce st =
  match st.decision with
  | Some v when not st.announced ->
      st.announced <- true;
      [ Amac.Algorithm.Decide v ]
  | Some _ | None -> []

let init ~margin (ctx : Amac.Algorithm.ctx) =
  if ctx.input <> 0 && ctx.input <> 1 then
    invalid_arg "Counter_race: binary inputs only";
  let me = Amac.Node_id.unique_exn ctx.id in
  let st =
    {
      me;
      margin;
      c = 0;
      v = ctx.input;
      max_seen = [| -1; -1 |];
      inflight = None;
      decision = None;
      announced = false;
    }
  in
  st.max_seen.(st.v) <- 0;
  maybe_decide st;
  (st, announce st @ broadcast st)

let on_receive _ctx st { sender = _; c; v } =
  st.max_seen.(v) <- max st.max_seen.(v) c;
  (* Lexicographic adoption: a strictly larger (counter, value) pair wins.
     The value tiebreak makes concurrent same-counter proposals converge. *)
  if c > st.c || (c = st.c && v > st.v) then begin
    st.c <- c;
    st.v <- v
  end;
  maybe_decide st;
  announce st

let on_ack _ctx st =
  (* The race step: an ack means every neighbor now holds our pair (the
     abstract MAC guarantee); if nothing overtook it mid-flight, our pair
     is the local maximum and the counter advances. *)
  (match st.inflight with
  | Some (c0, v0) when c0 = st.c && v0 = st.v ->
      st.c <- st.c + 1;
      st.max_seen.(st.v) <- max st.max_seen.(st.v) st.c
  | Some _ | None -> ());
  maybe_decide st;
  (* Rebroadcast forever — deciders included, so laggards (and recovered
     nodes) catch up to the winning pair; the engine stops the run once
     every live node has decided. *)
  announce st @ broadcast st

let msg_ids _ = 1

module F = Amac.Fingerprint

let fingerprint st acc =
  acc |> F.int st.me |> F.int st.margin |> F.int st.c |> F.int st.v
  |> F.int st.max_seen.(0)
  |> F.int st.max_seen.(1)
  |> F.option (fun (c, v) acc -> acc |> F.int c |> F.int v) st.inflight
  |> F.option F.int st.decision
  |> F.bool st.announced

let fp_msg { sender; c; v } acc = acc |> F.int sender |> F.int c |> F.int v

let clone st = { st with max_seen = Array.copy st.max_seen }

let hooks = Some { Amac.Algorithm.fingerprint; fingerprint_msg = fp_msg; clone }

let make ?(margin = 3) () =
  {
    Amac.Algorithm.name = Printf.sprintf "counter-race(margin=%d)" margin;
    init = init ~margin;
    on_receive;
    on_ack;
    msg_ids;
    hooks;
  }
