type 'm msg =
  | Inner of { instance : int; payload : 'm }
  | Candidate of { instance : int; value : int }

type mode =
  | Running  (* the current bit instance is in progress *)
  | Awaiting_candidate  (* bit decided against our candidate; must adopt *)
  | Finished

type 'm channel = {
  mutable out_q : 'm msg list;
  mutable in_flight : 'm msg option;
}

type ('s, 'm) state = {
  bits : int;
  base : ('s, 'm) Amac.Algorithm.t;
  base_ctx : Amac.Algorithm.ctx;
  mutable candidate : int;
  decided_bits : int array;  (* -1 = not yet *)
  mutable current : int;  (* instance index in progress / awaited *)
  mutable mode : mode;
  instances : 's option array;
  instance_inputs : int array;  (* the bit each instance was started with *)
  flooded : bool array;  (* candidate flood issued for instance i *)
  mutable future_inner : (int * 'm) list;  (* buffered, newest last *)
  known_candidate : int option array;
      (* first candidate seen per instance; flooding is once-per-node, so a
         candidate must be remembered the moment it passes by — a node that
         only later discovers it must adopt will never hear it again *)
  channel : 'm channel;
  mutable final : int option;
  mutable announced : bool;
}

let pp_msg pp_inner = function
  | Inner { instance; payload } ->
      Printf.sprintf "bit%d[%s]" instance (pp_inner payload)
  | Candidate { instance; value } ->
      Printf.sprintf "cand%d(%d)" instance value

let bit_of value j = (value lsr j) land 1

(* Each instance's input is the candidate's bit at the moment the instance
   started; later candidate adoptions must not retroactively change what a
   (possibly still-chattering) past instance believes it proposed. *)
let instance_ctx st instance =
  { st.base_ctx with Amac.Algorithm.input = st.instance_inputs.(instance) }

let maybe_send st =
  match st.channel.out_q with
  | message :: rest when st.channel.in_flight = None ->
      st.channel.out_q <- rest;
      st.channel.in_flight <- Some message;
      [ Amac.Algorithm.Broadcast message ]
  | _ -> []

let enqueue st message = st.channel.out_q <- st.channel.out_q @ [ message ]

(* Flood one candidate per instance: our own (if consistent / adopted) or
   the first relayed copy — either propagates a prefix-consistent value. *)
let flood_candidate st ~instance value =
  if not st.flooded.(instance) then begin
    st.flooded.(instance) <- true;
    enqueue st (Candidate { instance; value })
  end

(* Mutual recursion: finishing an instance may start the next, whose init
   may decide instantly (n = 1), may consume buffered future messages, and
   so on. All of this is zero-time local computation. *)
let rec proceed_past st instance =
  flood_candidate st ~instance st.candidate;
  st.current <- instance + 1;
  if st.current = st.bits then begin
    st.mode <- Finished;
    (* The candidate now agrees with every decided bit, so it IS the
       decided vector — and by induction some node's input. *)
    st.final <- Some st.candidate
  end
  else begin
    st.mode <- Running;
    start_instance st st.current
  end

and start_instance st instance =
  st.instance_inputs.(instance) <- bit_of st.candidate instance;
  let ist, actions = st.base.Amac.Algorithm.init (instance_ctx st instance) in
  st.instances.(instance) <- Some ist;
  apply_inner st instance actions;
  (* Replay traffic from nodes that reached this instance before us. *)
  let replay, keep =
    List.partition (fun (i, _) -> i = instance) st.future_inner
  in
  st.future_inner <- keep;
  List.iter (fun (_, payload) -> deliver_inner st instance payload) replay

and deliver_inner st instance payload =
  match st.instances.(instance) with
  | None -> st.future_inner <- st.future_inner @ [ (instance, payload) ]
  | Some ist ->
      let actions =
        st.base.Amac.Algorithm.on_receive (instance_ctx st instance) ist
          payload
      in
      apply_inner st instance actions

and apply_inner st instance actions =
  List.iter
    (fun action ->
      match action with
      | Amac.Algorithm.Broadcast payload ->
          enqueue st (Inner { instance; payload })
      | Amac.Algorithm.Decide bit -> bit_decided st instance bit)
    actions

and bit_decided st instance bit =
  if st.decided_bits.(instance) = -1 then begin
    st.decided_bits.(instance) <- bit;
    if instance = st.current && st.mode = Running then
      if bit_of st.candidate instance = bit then proceed_past st instance
      else begin
        st.mode <- Awaiting_candidate;
        try_adopt st
      end
  end

and handle_candidate st ~instance value =
  (* Remember and relay the first candidate per instance (any flooded
     candidate for instance i is prefix-consistent through i: its origin
     passed instance i with it), then adopt if we were waiting on one. *)
  if st.known_candidate.(instance) = None then
    st.known_candidate.(instance) <- Some value;
  flood_candidate st ~instance value;
  if st.mode = Awaiting_candidate && instance = st.current then begin
    st.candidate <- value;
    st.mode <- Running;
    proceed_past st instance
  end

and try_adopt st =
  match st.known_candidate.(st.current) with
  | Some value ->
      st.candidate <- value;
      st.mode <- Running;
      proceed_past st st.current
  | None -> ()

let finish st =
  let announce =
    match st.final with
    | Some value when not st.announced ->
        st.announced <- true;
        [ Amac.Algorithm.Decide value ]
    | Some _ | None -> []
  in
  announce @ maybe_send st

let init ~bits base (ctx : Amac.Algorithm.ctx) =
  if ctx.input < 0 || ctx.input >= 1 lsl bits then
    invalid_arg
      (Printf.sprintf "Multi_value: input %d outside [0, 2^%d)" ctx.input bits);
  let st =
    {
      bits;
      base;
      base_ctx = ctx;
      candidate = ctx.input;
      decided_bits = Array.make bits (-1);
      current = 0;
      mode = Running;
      instances = Array.make bits None;
      instance_inputs = Array.make bits 0;
      flooded = Array.make bits false;
      future_inner = [];
      known_candidate = Array.make bits None;
      channel = { out_q = []; in_flight = None };
      final = None;
      announced = false;
    }
  in
  start_instance st 0;
  (st, finish st)

let on_receive _ctx st message =
  (match message with
  | Inner { instance; payload } ->
      if instance < st.bits then deliver_inner st instance payload
  | Candidate { instance; value } ->
      if instance < st.bits then handle_candidate st ~instance value);
  finish st

let on_ack _ctx st =
  (match st.channel.in_flight with
  | Some (Inner { instance; payload = _ }) -> (
      st.channel.in_flight <- None;
      match st.instances.(instance) with
      | Some ist ->
          apply_inner st instance
            (st.base.Amac.Algorithm.on_ack (instance_ctx st instance) ist)
      | None -> ())
  | Some (Candidate _) -> st.channel.in_flight <- None
  | None -> ());
  finish st

(* Verification fast path (Algorithm.hooks), available exactly when the
   base algorithm provides its own — inner instance states and payloads are
   folded/cloned through the base hooks. *)
module F = Amac.Fingerprint

let hooks_over (bh : ('s, 'm) Amac.Algorithm.hooks) =
  let fp_msg message acc =
    match message with
    | Inner { instance; payload } ->
        acc |> F.int 1 |> F.int instance |> bh.fingerprint_msg payload
    | Candidate { instance; value } ->
        acc |> F.int 2 |> F.int instance |> F.int value
  in
  let fingerprint st acc =
    acc |> F.int st.bits |> F.int st.candidate
    |> F.array F.int st.decided_bits
    |> F.int st.current
    |> F.int
         (match st.mode with
         | Running -> 0
         | Awaiting_candidate -> 1
         | Finished -> 2)
    |> F.array (F.option bh.fingerprint) st.instances
    |> F.array F.int st.instance_inputs
    |> F.array F.bool st.flooded
    |> F.list
         (fun (instance, payload) acc ->
           acc |> F.int instance |> bh.fingerprint_msg payload)
         st.future_inner
    |> F.array (F.option F.int) st.known_candidate
    |> F.list fp_msg st.channel.out_q
    |> F.option fp_msg st.channel.in_flight
    |> F.option F.int st.final
    |> F.bool st.announced
  in
  let clone st =
    {
      st with
      decided_bits = Array.copy st.decided_bits;
      instances = Array.map (Option.map bh.clone) st.instances;
      instance_inputs = Array.copy st.instance_inputs;
      flooded = Array.copy st.flooded;
      known_candidate = Array.copy st.known_candidate;
      channel =
        { out_q = st.channel.out_q; in_flight = st.channel.in_flight };
    }
  in
  { Amac.Algorithm.fingerprint; fingerprint_msg = fp_msg; clone }

let make ~bits base =
  if bits < 1 || bits > 30 then
    invalid_arg "Multi_value.make: need 1 <= bits <= 30";
  {
    Amac.Algorithm.name =
      Printf.sprintf "multi-value(%d bits over %s)" bits
        base.Amac.Algorithm.name;
    init = init ~bits base;
    on_receive;
    on_ack;
    msg_ids =
      (fun message ->
        match message with
        | Inner { payload; _ } -> base.Amac.Algorithm.msg_ids payload
        | Candidate _ -> 0);
    hooks = Option.map hooks_over base.Amac.Algorithm.hooks;
  }
