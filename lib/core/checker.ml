type violation =
  | Agreement_violation of { values : int list }
  | Validity_violation of { values : int list; inputs : int list }
  | Termination_violation of { nodes : int list }
  | Irrevocability_violation of { node : int; value : int; time : int }

type report = {
  agreement : bool;
  validity : bool;
  termination : bool;
  irrevocability : bool;
  decided_values : int list;
  violations : violation list;
  problems : string list;
}

let describe = function
  | Agreement_violation { values } ->
      Printf.sprintf "agreement violated: decided values {%s}"
        (String.concat "," (List.map string_of_int values))
  | Validity_violation { values; inputs } ->
      Printf.sprintf "validity violated: decided {%s} not among inputs {%s}"
        (String.concat "," (List.map string_of_int values))
        (String.concat "," (List.map string_of_int inputs))
  | Termination_violation { nodes } ->
      Printf.sprintf "termination violated: nodes {%s} never decided"
        (String.concat "," (List.map string_of_int nodes))
  | Irrevocability_violation { node; value; time } ->
      Printf.sprintf "irrevocability violated: node %d re-decided %d at t=%d"
        node value time

let pp_violation fmt v = Format.pp_print_string fmt (describe v)

let is_safety = function
  | Agreement_violation _ | Validity_violation _ | Irrevocability_violation _
    ->
      true
  | Termination_violation _ -> false

let check ?honest ~inputs (outcome : Amac.Engine.outcome) =
  let n = Array.length outcome.decisions in
  if Array.length inputs <> n then
    invalid_arg "Checker.check: inputs length mismatches outcome";
  (* Byzantine-aware judgment: the consensus properties quantify over
     honest nodes only. A Byzantine node "deciding" anything — including a
     value no honest node holds, or several values in sequence — is the
     adversary talking, not a violation. With no mask every node is honest
     and this is exactly the classic checker. *)
  let honest =
    match honest with
    | None -> Array.make n true
    | Some mask ->
        if Array.length mask <> n then
          invalid_arg "Checker.check: honest mask length mismatches outcome";
        mask
  in
  let violations = ref [] in
  let violation v = violations := v :: !violations in
  let decided_values =
    List.init n (fun i -> if honest.(i) then outcome.decisions.(i) else None)
    |> List.filter_map (Option.map fst)
    |> List.sort_uniq Int.compare
  in
  let agreement =
    match decided_values with
    | [] | [ _ ] -> true
    | values ->
        violation (Agreement_violation { values });
        false
  in
  (* Validity over honest inputs only: a value planted by the adversary and
     adopted by every honest node is a validity violation even if some
     Byzantine node's nominal input matches it. *)
  let input_values =
    List.init n (fun i -> if honest.(i) then Some inputs.(i) else None)
    |> List.filter_map Fun.id |> List.sort_uniq Int.compare
  in
  let validity =
    let invalid =
      List.filter (fun v -> not (List.mem v input_values)) decided_values
    in
    match invalid with
    | [] -> true
    | values ->
        violation (Validity_violation { values; inputs = input_values });
        false
  in
  let termination =
    let missing = ref [] in
    Array.iteri
      (fun i decision ->
        if honest.(i) && (not outcome.crashed.(i)) && decision = None then
          missing := i :: !missing)
      outcome.decisions;
    match !missing with
    | [] -> true
    | nodes ->
        violation (Termination_violation { nodes = List.rev nodes });
        false
  in
  let irrevocability =
    match
      List.filter (fun (node, _, _) -> honest.(node)) outcome.extra_decides
    with
    | [] -> true
    | extras ->
        List.iter
          (fun (node, value, time) ->
            violation (Irrevocability_violation { node; value; time }))
          extras;
        false
  in
  let violations = List.rev !violations in
  {
    agreement;
    validity;
    termination;
    irrevocability;
    decided_values;
    violations;
    problems = List.map describe violations;
  }

let ok r = r.agreement && r.validity && r.termination && r.irrevocability

let safe r = r.agreement && r.validity && r.irrevocability

let safety_violations r = List.filter is_safety r.violations

let pp fmt r =
  if ok r then
    Format.fprintf fmt "consensus ok (decided {%s})"
      (String.concat "," (List.map string_of_int r.decided_values))
  else
    Format.fprintf fmt "consensus violated:@;%a"
      (Format.pp_print_list ~pp_sep:Format.pp_print_space
         Format.pp_print_string)
      r.problems

(* ------------------------------------------------------------------ *)
(* Degradation: safety asserted, liveness measured                     *)
(* ------------------------------------------------------------------ *)

type degradation = {
  safe : bool;
  safety_violations : violation list;
  correct : int list;
  decided_correct : int;
  correct_total : int;
  decided_fraction : float;
  decide_times : int list;
  max_decide_time : int option;
  broadcasts : int;
  link_dropped : int;
  stuttered : int;
  max_incarnation : int;
}

let degrade ?honest ~inputs (outcome : Amac.Engine.outcome) =
  let report = check ?honest ~inputs outcome in
  let violations = safety_violations report in
  let is_honest i = match honest with None -> true | Some m -> m.(i) in
  (* Liveness is likewise measured over honest survivors: a Byzantine node
     that never "decides" is not degradation. *)
  let correct =
    List.filter
      (fun i -> is_honest i && not outcome.crashed.(i))
      (List.init (Array.length outcome.decisions) (fun i -> i))
  in
  let decide_times =
    List.filter_map
      (fun i -> Option.map snd outcome.decisions.(i))
      correct
    |> List.sort Int.compare
  in
  let decided_correct = List.length decide_times in
  let correct_total = List.length correct in
  {
    safe = violations = [];
    safety_violations = violations;
    correct;
    decided_correct;
    correct_total;
    decided_fraction =
      (if correct_total = 0 then 1.0
       else float_of_int decided_correct /. float_of_int correct_total);
    decide_times;
    max_decide_time =
      (match List.rev decide_times with [] -> None | t :: _ -> Some t);
    broadcasts = outcome.broadcasts;
    link_dropped = outcome.link_dropped;
    stuttered = outcome.stuttered;
    max_incarnation = Array.fold_left max 0 outcome.incarnations;
  }

let pp_degradation fmt d =
  Format.fprintf fmt
    "@[<v>safety: %s@,decided: %d/%d correct nodes (%.2f)@,\
     decide times: [%s]@,broadcasts: %d  link-dropped: %d  stuttered: %d  \
     max incarnation: %d@]"
    (if d.safe then "ok"
     else
       String.concat "; " (List.map describe d.safety_violations))
    d.decided_correct d.correct_total d.decided_fraction
    (String.concat ";" (List.map string_of_int d.decide_times))
    d.broadcasts d.link_dropped d.stuttered d.max_incarnation
