type msg = int  (* the smallest value seen so far; carries no ids *)

type state = {
  target : int;
  mutable current_min : int;
  mutable rounds_done : int;
  mutable decided : bool;
}

let pp_msg = string_of_int

let resolve_target ~target (ctx : Amac.Algorithm.ctx) =
  match target with
  | `Fixed rounds -> rounds
  | `Knows_n -> (
      match ctx.n with
      | Some n -> n
      | None -> invalid_arg "Round_flood: `Knows_n requires knowledge of n")
  | `Knows_diameter -> (
      match ctx.diameter with
      | Some d -> d + 1
      | None ->
          invalid_arg "Round_flood: `Knows_diameter requires knowledge of D")

let init ~target (ctx : Amac.Algorithm.ctx) =
  let rounds = resolve_target ~target ctx in
  if rounds < 1 then invalid_arg "Round_flood: target must be >= 1 round";
  let st =
    {
      target = rounds;
      current_min = ctx.input;
      rounds_done = 0;
      decided = false;
    }
  in
  (st, [ Amac.Algorithm.Broadcast st.current_min ])

let on_receive _ctx st value =
  st.current_min <- min st.current_min value;
  []

let on_ack _ctx st =
  if st.decided then []
  else begin
    st.rounds_done <- st.rounds_done + 1;
    if st.rounds_done >= st.target then begin
      st.decided <- true;
      [ Amac.Algorithm.Decide st.current_min ]
    end
    else [ Amac.Algorithm.Broadcast st.current_min ]
  end

(* Verification fast path (Algorithm.hooks): the state is four scalars and
   the message one int, so the fold is total and [clone] is a record copy. *)
module F = Amac.Fingerprint

let fingerprint st acc =
  acc |> F.int st.target |> F.int st.current_min |> F.int st.rounds_done
  |> F.bool st.decided

let clone st = { st with current_min = st.current_min }

let hooks =
  Some { Amac.Algorithm.fingerprint; fingerprint_msg = F.int; clone }

let make ~target =
  let name =
    match target with
    | `Knows_n -> "round-flood(n)"
    | `Knows_diameter -> "round-flood(D+1)"
    | `Fixed r -> Printf.sprintf "round-flood(%d)" r
  in
  {
    Amac.Algorithm.name;
    init = init ~target;
    on_receive;
    on_ack;
    msg_ids = (fun _ -> 0);
    hooks;
  }
