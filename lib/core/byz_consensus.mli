(** Byzantine-tolerant binary consensus over acknowledged local broadcast —
    after Tseng & Sardina, "Byzantine Consensus in Abstract MAC Layer"
    (arXiv:2311.03034), which ports BV-broadcast-style protocols into the
    source paper's model. Requires knowledge of [n] and tolerates
    [f = floor((n-1)/3)] Byzantine nodes ([n >= 3f + 1]).

    Per round [r], with current estimate [est]:

    + {b BV-broadcast}: broadcast [EST(r, est)]. On [EST(r, v)] from
      [f + 1] {e distinct} senders, echo [EST(r, v)] (at least one honest
      node backs [v], so echoing cannot launder a Byzantine-only value —
      this is where validity against forged payloads lives). On [2f + 1]
      distinct senders, BV-accept [v] into [bin_values(r)].
    + {b AUX}: once [bin_values(r)] is non-empty, broadcast [AUX(r, w)]
      for one accepted [w]. Wait for AUX messages from [n - f] distinct
      senders whose values are all BV-accepted. Let [V] be that value set:
      if [V = {v}] and [v = coin(r)], {e decide} [v] and keep [est = v];
      if [V = {v}] only, [est := v]; otherwise [est := coin(r)].

    Agreement rests on quorum intersection: two [(n - f)]-quorums share
    [n - 2f >= f + 1] senders, hence an honest one, so rounds cannot
    decide conflicting values, and a decided value is every honest node's
    estimate from the next round on. All counting is deduplicated {e per
    sender} — the abstract MAC layer authenticates the transmitter, so an
    equivocator gets one vote per (round, value) no matter how many
    conflicting copies it delivers to different recipients.

    [coin(r)] is a deterministic function of [(seed, round)] shared by all
    nodes — a perfect common coin against our oblivious schedulers (the
    schedule is fixed before the run). An adversary that could read the
    coin and adapt the schedule could delay termination indefinitely;
    safety never depends on the coin.

    Decided nodes keep participating in every later round so that honest
    laggards can still assemble quorums after Byzantine nodes go silent;
    the engine's all-decided cutoff ends the run.

    Binary consensus: inputs must be 0 or 1.
    @raise Invalid_argument at init if [ctx.n] is absent or the input is
    non-binary. *)

type body =
  | Est of { round : int; value : int }
  | Aux of { round : int; value : int }

type msg = { sender : int; body : body }
(** Exposed so the Byzantine adapter in [lib/byz] can mutate rounds and
    values — the protocol must (and does) shrug those off. *)

type state

(** [make ~seed ()] — [seed] keys the shared deterministic coin. *)
val make : seed:int -> unit -> (state, msg) Amac.Algorithm.t

val pp_msg : msg -> string
