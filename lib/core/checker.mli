(** Verification of the consensus properties over an engine outcome.

    Checks the three properties of Sec 2 — agreement, validity,
    termination — plus irrevocability of the decide action. Used by every
    test and by the impossibility demonstrations, where a {e failing} report
    is the expected artifact (the whole point of E5/E6 is exhibiting an
    agreement violation). *)

(** A machine-readable property violation. The model checker's shrinker and
    both [Mcheck] engines consume these; [problems] below is their rendered
    form. *)
type violation =
  | Agreement_violation of { values : int list }
      (** two or more distinct values decided *)
  | Validity_violation of { values : int list; inputs : int list }
      (** decided values outside the input set *)
  | Termination_violation of { nodes : int list }
      (** non-crashed nodes that never decided *)
  | Irrevocability_violation of { node : int; value : int; time : int }
      (** a node re-decided a different value *)

type report = {
  agreement : bool;  (** no two nodes decided different values *)
  validity : bool;  (** every decided value was some node's input *)
  termination : bool;  (** every non-crashed node decided *)
  irrevocability : bool;  (** no node decided twice with different values *)
  decided_values : int list;  (** distinct decided values, sorted *)
  violations : violation list;  (** machine-readable, empty when ok *)
  problems : string list;  (** human-readable explanations, empty when ok *)
}

(** [check ?honest ~inputs outcome] — [inputs] must be the array the run
    started with.

    [?honest] is the Byzantine-aware switch: when given, every property
    quantifies over honest nodes only — agreement and validity range over
    honest decisions and honest inputs, termination excuses Byzantine nodes,
    and irrevocability ignores their re-decides. A Byzantine node
    "deciding" a third value is the adversary talking, not a violation; two
    {e honest} nodes disagreeing still is (test_checker pins both
    directions, guarding against a silently vacuous checker). Omitted, all
    nodes are honest and this is the classic checker.
    @raise Invalid_argument if the mask length mismatches the outcome. *)
val check : ?honest:bool array -> inputs:int array -> Amac.Engine.outcome -> report

(** [ok report] — all four properties hold. *)
val ok : report -> bool

(** [safe report] — agreement, validity and irrevocability hold (termination
    not required); the right notion when a run was cut off by [max_time]. *)
val safe : report -> bool

(** [is_safety violation] — true for agreement / validity / irrevocability
    violations, false for termination (which a [max_time] cutoff or a crash
    against a deterministic algorithm produces legitimately, Thm 3.2). *)
val is_safety : violation -> bool

(** [safety_violations report] = the [violations] for which {!is_safety}
    holds — the fuzzer's failure predicate. *)
val safety_violations : report -> violation list

val pp_violation : Format.formatter -> violation -> unit

val pp : Format.formatter -> report -> unit

(** {1 Degradation under fault plans}

    Under an adversarial fault plan, termination is not a pass/fail
    property — the plan may legitimately prevent some nodes from ever
    deciding. Safety, on the other hand, is unconditional. A
    [degradation] report asserts safety and downgrades liveness to measured
    metrics, so "graceful degradation" is a checkable artifact: tests pin
    [safe = true] under {e any} plan and then assert quantitative floors
    ([decided_fraction], decide-latency bounds, retransmission counts)
    appropriate to the algorithm and plan at hand. *)

type degradation = {
  safe : bool;  (** agreement + validity + irrevocability *)
  safety_violations : violation list;  (** empty iff [safe] *)
  correct : int list;  (** nodes up at the end of the run *)
  decided_correct : int;  (** how many of [correct] decided *)
  correct_total : int;
  decided_fraction : float;  (** [decided_correct / correct_total]; 1.0 if
                                 no node is correct *)
  decide_times : int list;  (** correct nodes' decide times, sorted *)
  max_decide_time : int option;  (** last correct decide, if any *)
  broadcasts : int;
      (** total broadcasts accepted — against a fault-free baseline this
          measures retransmission overhead *)
  link_dropped : int;  (** deliveries eaten by injected link faults *)
  stuttered : int;  (** actions suppressed by stutter windows *)
  max_incarnation : int;  (** highest per-node recovery count *)
}

(** [degrade ?honest ~inputs outcome] — safety via {!check}, liveness as
    metrics. Note "correct" here means up at the {e end} of the run,
    matching the engine's [crashed] array: a crashed-then-recovered node
    counts as correct (its incarnation is live) and is expected to decide
    under a hardened algorithm once faults quiesce. With [?honest],
    Byzantine nodes are excluded from [correct] — their silence is the
    adversary's business, not degradation. *)
val degrade :
  ?honest:bool array -> inputs:int array -> Amac.Engine.outcome -> degradation

val pp_degradation : Format.formatter -> degradation -> unit
