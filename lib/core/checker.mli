(** Verification of the consensus properties over an engine outcome.

    Checks the three properties of Sec 2 — agreement, validity,
    termination — plus irrevocability of the decide action. Used by every
    test and by the impossibility demonstrations, where a {e failing} report
    is the expected artifact (the whole point of E5/E6 is exhibiting an
    agreement violation). *)

(** A machine-readable property violation. The model checker's shrinker and
    both [Mcheck] engines consume these; [problems] below is their rendered
    form. *)
type violation =
  | Agreement_violation of { values : int list }
      (** two or more distinct values decided *)
  | Validity_violation of { values : int list; inputs : int list }
      (** decided values outside the input set *)
  | Termination_violation of { nodes : int list }
      (** non-crashed nodes that never decided *)
  | Irrevocability_violation of { node : int; value : int; time : int }
      (** a node re-decided a different value *)

type report = {
  agreement : bool;  (** no two nodes decided different values *)
  validity : bool;  (** every decided value was some node's input *)
  termination : bool;  (** every non-crashed node decided *)
  irrevocability : bool;  (** no node decided twice with different values *)
  decided_values : int list;  (** distinct decided values, sorted *)
  violations : violation list;  (** machine-readable, empty when ok *)
  problems : string list;  (** human-readable explanations, empty when ok *)
}

(** [check ~inputs outcome] — [inputs] must be the array the run started
    with. *)
val check : inputs:int array -> Amac.Engine.outcome -> report

(** [ok report] — all four properties hold. *)
val ok : report -> bool

(** [safe report] — agreement, validity and irrevocability hold (termination
    not required); the right notion when a run was cut off by [max_time]. *)
val safe : report -> bool

(** [is_safety violation] — true for agreement / validity / irrevocability
    violations, false for termination (which a [max_time] cutoff or a crash
    against a deterministic algorithm produces legitimately, Thm 3.2). *)
val is_safety : violation -> bool

(** [safety_violations report] = the [violations] for which {!is_safety}
    holds — the fuzzer's failure predicate. *)
val safety_violations : report -> violation list

val pp_violation : Format.formatter -> violation -> unit

val pp : Format.formatter -> report -> unit
