type status = Bivalent | Decided_value of int

type msg =
  | Phase1 of { id : int; value : int }
  | Phase2 of { id : int; status : status }

type phase =
  | In_phase1  (* own phase-1 broadcast in flight *)
  | In_phase2  (* own phase-2 broadcast in flight *)
  | Awaiting_witnesses
  | Finished

type state = {
  mutable phase : phase;
  mutable r1 : msg list;  (* everything received before the phase-1 ack *)
  mutable r2 : msg list;  (* phase-2 receipts after that, plus own *)
  mutable status : status;
  mutable witnesses : int list;  (* W: every id heard from, fixed at phase-2 ack *)
}

let pp_status = function
  | Bivalent -> "bivalent"
  | Decided_value v -> Printf.sprintf "decided(%d)" v

let pp_msg = function
  | Phase1 { id; value } -> Printf.sprintf "phase1{id=%d;v=%d}" id value
  | Phase2 { id; status } ->
      Printf.sprintf "phase2{id=%d;%s}" id (pp_status status)

let msg_ids = function Phase1 _ | Phase2 _ -> 1

let my_id (ctx : Amac.Algorithm.ctx) = Amac.Node_id.unique_exn ctx.id

let init (ctx : Amac.Algorithm.ctx) =
  let mine = Phase1 { id = my_id ctx; value = ctx.input } in
  let state =
    {
      phase = In_phase1;
      r1 = [ mine ];
      r2 = [];
      status = Bivalent;
      witnesses = [];
    }
  in
  (state, [ Amac.Algorithm.Broadcast mine ])

let msg_id = function Phase1 { id; _ } | Phase2 { id; _ } -> id

let received state = state.r1 @ state.r2

(* W covered: every witness has a phase-2 message somewhere in R1 ∪ R2.
   Scans the two lists directly — this runs on every phase-2 receipt while
   awaiting witnesses, and appending R1 @ R2 per witness is measurable
   under the model checker. *)
let witnesses_covered state =
  let phase2_in id =
    List.exists (function Phase2 { id = i; _ } -> i = id | Phase1 _ -> false)
  in
  List.for_all
    (fun id -> phase2_in id state.r1 || phase2_in id state.r2)
    state.witnesses

(* The final decision rule. [scope] is the erratum switch: the corrected
   algorithm searches R1 ∪ R2 for a decided status; the literal paper text
   searches only R2. In either scope at most one decided value can exist
   (Thm 4.1's argument), so "any decided value, else default 1" is
   well-defined. *)
let decision ~scope state =
  let pool = match scope with `R1_and_r2 -> received state | `R2 -> state.r2 in
  let rec find = function
    | [] -> 1
    | Phase2 { status = Decided_value v; _ } :: _ -> v
    | (Phase2 { status = Bivalent; _ } | Phase1 _) :: rest -> find rest
  in
  find pool

let maybe_finish ~scope state =
  if state.phase = Awaiting_witnesses && witnesses_covered state then begin
    state.phase <- Finished;
    [ Amac.Algorithm.Decide (decision ~scope state) ]
  end
  else []

let on_receive ~scope _ctx state msg =
  match state.phase with
  | In_phase1 ->
      state.r1 <- msg :: state.r1;
      []
  | In_phase2 ->
      state.r2 <- msg :: state.r2;
      []
  | Awaiting_witnesses -> (
      (* Line 21 of Algorithm 1: only phase-2 messages are still collected. *)
      match msg with
      | Phase2 _ ->
          state.r2 <- msg :: state.r2;
          maybe_finish ~scope state
      | Phase1 _ -> [])
  | Finished -> []

let compute_status (ctx : Amac.Algorithm.ctx) state =
  let contrary = function
    | Phase1 { value; _ } -> value <> ctx.input
    | Phase2 { status = Bivalent; _ } -> true
    | Phase2 { status = Decided_value _; _ } -> false
  in
  if List.exists contrary state.r1 then Bivalent else Decided_value ctx.input

let on_ack ~scope (ctx : Amac.Algorithm.ctx) state =
  match state.phase with
  | In_phase1 ->
      state.status <- compute_status ctx state;
      state.phase <- In_phase2;
      let mine = Phase2 { id = my_id ctx; status = state.status } in
      state.r2 <- [ mine ];
      [ Amac.Algorithm.Broadcast mine ]
  | In_phase2 ->
      state.phase <- Awaiting_witnesses;
      state.witnesses <- List.sort_uniq Int.compare (List.map msg_id (received state));
      maybe_finish ~scope state
  | Awaiting_witnesses | Finished -> []

(* Verification fast path (Algorithm.hooks): hand-written structural
   fingerprint and deep copy. Every field is a mutable scalar or an
   immutable list of immutable messages, so the copy is a record copy. *)
module F = Amac.Fingerprint

let fp_status status acc =
  match status with
  | Bivalent -> F.int 0 acc
  | Decided_value v -> acc |> F.int 1 |> F.int v

let fp_msg msg acc =
  match msg with
  | Phase1 { id; value } -> acc |> F.int 1 |> F.int id |> F.int value
  | Phase2 { id; status } -> acc |> F.int 2 |> F.int id |> fp_status status

let fp_phase phase acc =
  F.int
    (match phase with
    | In_phase1 -> 0
    | In_phase2 -> 1
    | Awaiting_witnesses -> 2
    | Finished -> 3)
    acc

let fingerprint state acc =
  acc |> fp_phase state.phase |> F.list fp_msg state.r1
  |> F.list fp_msg state.r2 |> fp_status state.status
  |> F.list F.int state.witnesses

let clone state = { state with phase = state.phase }

let hooks = Some { Amac.Algorithm.fingerprint; fingerprint_msg = fp_msg; clone }

let make ~scope ~name =
  {
    Amac.Algorithm.name;
    init;
    on_receive = on_receive ~scope;
    on_ack = on_ack ~scope;
    msg_ids;
    hooks;
  }

let algorithm = make ~scope:`R1_and_r2 ~name:"two-phase"

let literal = make ~scope:`R2 ~name:"two-phase-literal"
