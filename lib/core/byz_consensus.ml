type body =
  | Est of { round : int; value : int }
  | Aux of { round : int; value : int }

type msg = { sender : int; body : body }

type state = {
  me : int;
  n : int;
  f : int;
  seed : int;
  mutable round : int;
  mutable est : int;
  (* (round, value, sender) — distinct-sender support for EST(round, value);
     dedup by sender is the Byzantine firewall: an equivocator still only
     counts once per (round, value). *)
  est_from : (int * int * int, unit) Hashtbl.t;
  echoed : (int * int, unit) Hashtbl.t;  (* (round, value) we broadcast *)
  bin : (int * int, unit) Hashtbl.t;  (* (round, value) BV-accepted *)
  aux_from : (int * int, int) Hashtbl.t;  (* (round, sender) -> value *)
  aux_sent : (int, unit) Hashtbl.t;  (* rounds whose AUX we broadcast *)
  mutable outbox : body list;
  mutable sending : bool;
  mutable decision : int option;
  mutable announced : bool;
}

let pp_body = function
  | Est { round; value } -> Printf.sprintf "est(r%d,v=%d)" round value
  | Aux { round; value } -> Printf.sprintf "aux(r%d,v=%d)" round value

let pp_msg m = Printf.sprintf "%d:%s" m.sender (pp_body m.body)

(* Deterministic common coin: every node computes the same bit from (seed,
   round) alone. Against our oblivious schedulers (fixed before the run)
   this behaves like a perfect shared coin; a coin-aware adaptive adversary
   could stall termination, never safety. *)
let coin ~seed round = Hashtbl.hash (0x5bc1, seed, round) land 1

let send st body = st.outbox <- st.outbox @ [ body ]

let maybe_broadcast st =
  match st.outbox with
  | body :: rest when not st.sending ->
      st.outbox <- rest;
      st.sending <- true;
      [ Amac.Algorithm.Broadcast { sender = st.me; body } ]
  | _ -> []

let support st round value =
  Hashtbl.fold
    (fun (r, v, _) () acc -> if r = round && v = value then acc + 1 else acc)
    st.est_from 0

let echo st round value =
  if not (Hashtbl.mem st.echoed (round, value)) then begin
    Hashtbl.replace st.echoed (round, value) ();
    Hashtbl.replace st.est_from (round, value, st.me) ();
    send st (Est { round; value })
  end

let send_aux st round value =
  if not (Hashtbl.mem st.aux_sent round) then begin
    Hashtbl.replace st.aux_sent round ();
    Hashtbl.replace st.aux_from (round, st.me) value;
    send st (Aux { round; value })
  end

(* One pass of the round state machine; loops because buffered future-round
   messages can satisfy several transitions at once. *)
let rec advance st =
  let r = st.round in
  echo st r st.est;
  List.iter
    (fun v ->
      let s = support st r v in
      (* BV-broadcast: f+1 distinct supporters means at least one honest
         node proposed v, so echoing cannot launder a Byzantine-only
         value; 2f+1 means a majority of honest nodes back it. *)
      if s >= st.f + 1 then echo st r v;
      if s >= (2 * st.f) + 1 then Hashtbl.replace st.bin (r, v) ())
    [ 0; 1 ];
  let binned v = Hashtbl.mem st.bin (r, v) in
  if binned 0 then send_aux st r 0 else if binned 1 then send_aux st r 1;
  (* Decision step: n - f distinct AUX values all of which are BV-accepted.
     Two such quorums share >= n - 2f >= f + 1 senders — an honest one —
     which is what makes decisions of different values impossible. *)
  let compatible =
    Hashtbl.fold
      (fun (r', _) v acc ->
        if r' = r && binned v then v :: acc else acc)
      st.aux_from []
  in
  (* A decided singleton must stop here: with n = 1 every quorum is
     self-satisfied and round-advancing (which exists to help laggards —
     of which there are none) would recurse forever. *)
  if List.length compatible >= st.n - st.f && not (st.decision <> None && st.n = 1)
  then begin
    let values = List.sort_uniq Int.compare compatible in
    let c = coin ~seed:st.seed r in
    (match values with
    | [ v ] ->
        st.est <- v;
        if v = c && st.decision = None then st.decision <- Some v
    | _ -> st.est <- c);
    st.round <- r + 1;
    (* Deciders keep playing every subsequent round: their ESTs and AUXs
       are what let laggards assemble quorums once faulty nodes go quiet.
       The engine ends the run when every live node has decided. *)
    advance st
  end

let init ~seed (ctx : Amac.Algorithm.ctx) =
  let n =
    match ctx.n with
    | Some n -> n
    | None -> invalid_arg "Byz_consensus: requires knowledge of n"
  in
  if ctx.input <> 0 && ctx.input <> 1 then
    invalid_arg "Byz_consensus: binary inputs only";
  let me = Amac.Node_id.unique_exn ctx.id in
  let st =
    {
      me;
      n;
      f = (if n <= 3 then 0 else (n - 1) / 3);
      seed;
      round = 0;
      est = ctx.input;
      est_from = Hashtbl.create 64;
      echoed = Hashtbl.create 16;
      bin = Hashtbl.create 16;
      aux_from = Hashtbl.create 64;
      aux_sent = Hashtbl.create 16;
      outbox = [];
      sending = false;
      decision = None;
      announced = false;
    }
  in
  advance st;
  let announce =
    match st.decision with
    | Some v ->
        st.announced <- true;
        [ Amac.Algorithm.Decide v ]
    | None -> []
  in
  (st, announce @ maybe_broadcast st)

let finish st =
  let announce =
    match st.decision with
    | Some v when not st.announced ->
        st.announced <- true;
        [ Amac.Algorithm.Decide v ]
    | Some _ | None -> []
  in
  announce @ maybe_broadcast st

let on_receive _ctx st { sender; body } =
  (match body with
  | Est { round; value } ->
      if value = 0 || value = 1 then
        Hashtbl.replace st.est_from (round, value, sender) ()
  | Aux { round; value } ->
      if
        (value = 0 || value = 1)
        && not (Hashtbl.mem st.aux_from (round, sender))
      then Hashtbl.replace st.aux_from (round, sender) value);
  advance st;
  finish st

let on_ack _ctx st =
  st.sending <- false;
  finish st

let msg_ids _ = 1

module F = Amac.Fingerprint

let fp_body body acc =
  match body with
  | Est { round; value } -> acc |> F.int 1 |> F.int round |> F.int value
  | Aux { round; value } -> acc |> F.int 2 |> F.int round |> F.int value

let fp_msg { sender; body } acc = acc |> F.int sender |> fp_body body

(* Tables fold in sorted key order so insertion order never splits
   fingerprints (same discipline as ben_or). *)
let fp_tbl fp_key fp_value tbl acc =
  let entries = Hashtbl.fold (fun k v l -> (k, v) :: l) tbl [] in
  let entries = List.sort compare entries in
  F.list (fun (k, v) acc -> acc |> fp_key k |> fp_value v) entries acc

let fp_unit () acc = acc

let fingerprint st acc =
  acc |> F.int st.me |> F.int st.n |> F.int st.f |> F.int st.seed
  |> F.int st.round |> F.int st.est
  |> fp_tbl
       (fun (r, v, s) acc -> acc |> F.int r |> F.int v |> F.int s)
       fp_unit st.est_from
  |> fp_tbl (fun (r, v) acc -> acc |> F.int r |> F.int v) fp_unit st.echoed
  |> fp_tbl (fun (r, v) acc -> acc |> F.int r |> F.int v) fp_unit st.bin
  |> fp_tbl (fun (r, s) acc -> acc |> F.int r |> F.int s) F.int st.aux_from
  |> fp_tbl F.int fp_unit st.aux_sent
  |> F.list fp_body st.outbox |> F.bool st.sending
  |> F.option F.int st.decision
  |> F.bool st.announced

let clone st =
  {
    st with
    est_from = Hashtbl.copy st.est_from;
    echoed = Hashtbl.copy st.echoed;
    bin = Hashtbl.copy st.bin;
    aux_from = Hashtbl.copy st.aux_from;
    aux_sent = Hashtbl.copy st.aux_sent;
  }

let hooks = Some { Amac.Algorithm.fingerprint; fingerprint_msg = fp_msg; clone }

let make ~seed () =
  {
    Amac.Algorithm.name = Printf.sprintf "byz-consensus(seed=%d)" seed;
    init = init ~seed;
    on_receive;
    on_ack;
    msg_ids;
    hooks;
  }
