open Paxos_types

type component =
  | Leader of { id : int; hb : int }
  | Change of { counter : int; origin : int }
  | Search of { root : int; hops : int; sender : int }
  | Proposal of proposer_msg
  | Response of response
  | Decision of int

type msg = component list

module Instrument = struct
  (* Conservation accounting for Lemma 4.2: [generated] counts affirmative
     responses produced by acceptors, [counted] counts what proposers
     accumulate. The lemma says counted <= generated, per proposition. *)
  type key = { k_pno : pno; k_round : round }

  type t = {
    generated_tbl : (key, int) Hashtbl.t;
    counted_tbl : (key, int) Hashtbl.t;
  }

  let create () =
    { generated_tbl = Hashtbl.create 64; counted_tbl = Hashtbl.create 64 }

  let bump tbl key amount =
    let current = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
    Hashtbl.replace tbl key (current + amount)

  let note_generated t ~pno ~round =
    bump t.generated_tbl { k_pno = pno; k_round = round } 1

  let note_counted t ~pno ~round ~count =
    bump t.counted_tbl { k_pno = pno; k_round = round } count

  let violations t =
    Hashtbl.fold
      (fun key counted acc ->
        let generated =
          Option.value ~default:0 (Hashtbl.find_opt t.generated_tbl key)
        in
        if counted > generated then
          (key.k_pno, key.k_round, generated, counted) :: acc
        else acc)
      t.counted_tbl []

  let total tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0

  let generated t = total t.generated_tbl

  let counted t = total t.counted_tbl

  let max_tag t =
    Hashtbl.fold
      (fun key _ acc -> max acc key.k_pno.tag)
      t.generated_tbl 0
end

type config = {
  leader_priority : bool;
  aggregate : bool;
  quorum : int option;  (* override of the majority threshold (footnote 1) *)
  instrument : Instrument.t option;
  retransmit : bool;  (* fault hardening: heartbeats, re-election, re-proposal *)
  patience : int option;  (* detector silence budget; default 4n+16 *)
  backoff : int;  (* detector patience multiplier on false suspicion *)
}

type proposer_phase =
  | Idle
  | Preparing of {
      pno : pno;
      mutable yes : int;
      mutable no : int;
      mutable best_prior : prior option;
    }
  | Proposing of {
      pno : pno;
      value : int;
      mutable yes : int;
      mutable no : int;
    }

(* An acceptor response waiting in the outgoing queue. The destination
   (parent in the tree rooted at [q_target]) is resolved when the response is
   dequeued for sending, so routing always uses the freshest parent pointer;
   an entry whose target has no known parent yet simply stays queued. *)
type pending_response = {
  q_target : int;
  q_pno : pno;
  q_round : round;
  q_positive : bool;
  mutable q_count : int;
  mutable q_prior : prior option;
  mutable q_committed : pno option;
}

type state = {
  me : int;
  n : int;
  input : int;
  cfg : config;
  (* leader election service (Alg 2) *)
  mutable omega : int;
  mutable leader_q : int option;
  (* change service (Alg 3) *)
  mutable lamport : int;
  mutable last_change : int * int;  (* (counter, origin); (-1,-1) = -inf *)
  mutable change_q : (int * int) option;
  (* tree building service (Alg 4) *)
  dist : (int, int) Hashtbl.t;
  parent : (int, int) Hashtbl.t;
  mutable tree_q : (int * int) list;  (* (root, hops to advertise) *)
  (* proposer *)
  mutable max_tag : int;
  mutable phase : proposer_phase;
  mutable attempts_left : int;
  mutable proposal_q : proposer_msg option;
  mutable best_proposal_seen : (pno * round) option;
  (* acceptor *)
  mutable promised : pno option;
  mutable accepted : prior option;
  mutable responded : (pno * round) option;
  mutable response_q : pending_response list;
  (* decision *)
  mutable decision : int option;
  mutable announced : bool;
  mutable decide_q : int option;
  (* transport *)
  mutable sending : bool;
  (* hardening (all inert unless cfg.retransmit). The ack is the ONLY clock
     in this model: a node that stops broadcasting stops observing time and
     can never wake itself, so an undecided hardened node keeps a heartbeat
     broadcast going — bounded by [patience_left] so that runs in which
     consensus is genuinely impossible (majority crashed) still quiesce.
     Heartbeat emission, silence accounting and the suspected set live in
     the ◇P detector. *)
  fd : Fd.t;
  mutable idle_acks : int;  (* acks since the last tree-refresh *)
  mutable next_refresh : int;  (* tree-refresh backoff, in acks *)
  mutable progress_silence : int;  (* leader acks since counted progress *)
  mutable next_retry : int;  (* re-proposal backoff, in acks *)
  retry_start : int;
  retry_cap : int;
  mutable retries_left : int;  (* re-proposal budget per leadership epoch *)
  mutable patience_left : int;  (* heartbeat budget; refilled on progress *)
}

(* Hardening tunables. All counts are in the node's own acks (~F_ack each).
   The re-proposal timeout scales with n so a healthy high-diameter
   aggregation wave (Theta(D) acks) is never mistaken for loss. *)
let refresh_start = 4

let refresh_cap = 64

let patience_max = 512

let max_retries = 8

let majority st =
  match st.cfg.quorum with Some q -> q | None -> (st.n / 2) + 1

(* Once this many acceptors rejected, yes can no longer reach a majority.
   (The paper says "a majority of the acceptors rejecting"; with even n a
   proposition can split n/2–n/2 and reach neither majority, so we fail at
   the exact can't-win point instead.) *)
let fail_threshold st = st.n - majority st + 1

let stamp_compare (ca, oa) (cb, ob) =
  match Int.compare ca cb with 0 -> Int.compare oa ob | c -> c

let hb_of st id = Fd.hb st.fd id

let suspected st id = Fd.suspected st.fd id

(* Observable protocol progress refills the heartbeat budget: as long as
   state keeps advancing somewhere, hardened nodes keep knocking. Every
   refill site is a finite-progress event (distances only shrink, stamps
   only grow, one response per acceptor per proposition, re-proposals are
   budgeted), so total refills are finite and a stuck run still drains. *)
let refill st = if st.cfg.retransmit then st.patience_left <- patience_max

(* ------------------------------------------------------------------ *)
(* Broadcast service (Alg 5): pack one message per non-empty queue.    *)
(* ------------------------------------------------------------------ *)

let dequeue_tree st =
  match st.tree_q with
  | [] -> None
  | entries ->
      let chosen =
        if st.cfg.leader_priority then
          match List.find_opt (fun (root, _) -> root = st.omega) entries with
          | Some entry -> entry
          | None -> List.hd entries
        else List.hd entries
      in
      st.tree_q <- List.filter (fun e -> e <> chosen) st.tree_q;
      let root, hops = chosen in
      Some (Search { root; hops; sender = st.me })

(* Take the first response whose destination is routable; unroutable entries
   stay queued until a search message establishes the parent pointer. *)
let dequeue_response st =
  let rec pick acc = function
    | [] -> None
    | entry :: rest -> (
        match Hashtbl.find_opt st.parent entry.q_target with
        | Some parent_id ->
            st.response_q <- List.rev_append acc rest;
            Some
              (Response
                 {
                   dest = parent_id;
                   target = entry.q_target;
                   pno = entry.q_pno;
                   round = entry.q_round;
                   positive = entry.q_positive;
                   count = entry.q_count;
                   best_prior = entry.q_prior;
                   committed = entry.q_committed;
                 })
        | None -> pick (entry :: acc) rest)
  in
  pick [] st.response_q

let compose st =
  let components = ref [] in
  (match st.decide_q with
  | Some v ->
      st.decide_q <- None;
      components := Decision v :: !components
  | None -> ());
  (match dequeue_response st with
  | Some c -> components := c :: !components
  | None -> ());
  (match st.proposal_q with
  | Some p ->
      st.proposal_q <- None;
      components := Proposal p :: !components
  | None -> ());
  (match dequeue_tree st with
  | Some c -> components := c :: !components
  | None -> ());
  (match st.change_q with
  | Some (counter, origin) ->
      st.change_q <- None;
      components := Change { counter; origin } :: !components
  | None -> ());
  (match st.leader_q with
  | Some id ->
      st.leader_q <- None;
      (* The heartbeat value is read at send time so relays always carry
         the freshest count they know for that candidate. *)
      components := Leader { id; hb = hb_of st id } :: !components
  | None -> ());
  !components

let maybe_send st =
  if st.sending then []
  else
    match compose st with
    | [] -> []
    | components ->
        st.sending <- true;
        [ Amac.Algorithm.Broadcast components ]

(* Wrap up a handler: emit a pending decide announcement, then try to send. *)
let finish st =
  let announce =
    match st.decision with
    | Some v when not st.announced ->
        st.announced <- true;
        [ Amac.Algorithm.Decide v ]
    | Some _ | None -> []
  in
  announce @ maybe_send st

(* ------------------------------------------------------------------ *)
(* PAXOS proposer and acceptor                                          *)
(* ------------------------------------------------------------------ *)

let decide st value =
  if st.decision = None then begin
    st.decision <- Some value;
    st.decide_q <- Some value;
    st.phase <- Idle
  end

(* Queue invariant (Sec 4.2.1): responses only for the current leader's
   largest proposal number. *)
let prune_response_q st =
  st.response_q <-
    List.filter (fun entry -> entry.q_target = st.omega) st.response_q;
  let largest =
    List.fold_left
      (fun acc entry ->
        match acc with
        | None -> Some entry.q_pno
        | Some best -> if pno_lt best entry.q_pno then Some entry.q_pno else acc)
      None st.response_q
  in
  match largest with
  | None -> ()
  | Some best ->
      st.response_q <-
        List.filter (fun entry -> compare_pno entry.q_pno best = 0) st.response_q

let enqueue_response st ~target ~pno ~round ~positive ~count ~prior ~committed =
  let entry =
    {
      q_target = target;
      q_pno = pno;
      q_round = round;
      q_positive = positive;
      q_count = count;
      q_prior = prior;
      q_committed = committed;
    }
  in
  let mergeable existing =
    existing.q_target = entry.q_target
    && compare_pno existing.q_pno entry.q_pno = 0
    && existing.q_round = entry.q_round
    && existing.q_positive = entry.q_positive
  in
  (if st.cfg.aggregate then
     match List.find_opt mergeable st.response_q with
     | Some existing ->
         existing.q_count <- existing.q_count + entry.q_count;
         existing.q_prior <- max_prior existing.q_prior entry.q_prior;
         existing.q_committed <- max_committed existing.q_committed entry.q_committed
     | None -> st.response_q <- st.response_q @ [ entry ]
   else st.response_q <- st.response_q @ [ entry ]);
  prune_response_q st

let note_counted st ~pno ~round ~count =
  match st.cfg.instrument with
  | Some instrument when count > 0 ->
      Instrument.note_counted instrument ~pno ~round ~count
  | Some _ | None -> ()

let rec generate_proposal st =
  if st.decision = None && st.omega = st.me then begin
    st.max_tag <- st.max_tag + 1;
    let pno = { tag = st.max_tag; proposer = st.me } in
    st.phase <- Preparing { pno; yes = 0; no = 0; best_prior = None };
    let message = Prepare pno in
    st.proposal_q <- Some message;
    st.best_proposal_seen <- Some (pno, Prepare_round);
    self_respond st message
  end

(* The change service's UpdateQ (Alg 3): enqueue the stamp and, at the
   leader, generate a fresh proposal. *)
and change_updateq st stamp =
  st.change_q <- Some stamp;
  if st.omega = st.me && st.decision = None then begin
    st.attempts_left <- 1;
    (* A change notification opens a fresh leadership epoch: restore the
       hardened re-proposal budget and backoff. *)
    st.retries_left <- max_retries;
    st.next_retry <- st.retry_start;
    generate_proposal st
  end

(* ONCHANGE (Alg 3): omega or a dist entry was updated locally. *)
and local_change st =
  st.lamport <- st.lamport + 1;
  let stamp = (st.lamport, st.me) in
  st.last_change <- stamp;
  change_updateq st stamp

(* A proposition failed with a majority of rejections. The paper allows one
   immediate retry per change notification; past that we raise a fresh local
   change (documented deviation — see the .mli), which floods and resets the
   budget. Each retry sets the tag above every committed number learned, so
   the retry chain terminates. *)
and proposition_failed st =
  if st.omega = st.me && st.decision = None then begin
    if st.attempts_left > 0 then begin
      st.attempts_left <- st.attempts_left - 1;
      generate_proposal st
    end
    else local_change st
  end
  else st.phase <- Idle

and start_propose st ~pno ~best_prior =
  let value =
    match best_prior with Some prior -> prior.value | None -> st.input
  in
  st.phase <- Proposing { pno; value; yes = 0; no = 0 };
  let message = Propose { pno; value } in
  st.proposal_q <- Some message;
  st.best_proposal_seen <- Some (pno, Propose_round);
  self_respond st message

(* Proposer-side counting of (aggregated) responses addressed to us. *)
and count_response st (r : response) =
  match st.phase with
  | Preparing p when compare_pno p.pno r.pno = 0 && r.round = Prepare_round ->
      st.progress_silence <- 0;
      refill st;
      if r.positive then begin
        note_counted st ~pno:r.pno ~round:r.round ~count:r.count;
        p.yes <- p.yes + r.count;
        p.best_prior <- max_prior p.best_prior r.best_prior;
        if p.yes >= majority st then
          start_propose st ~pno:p.pno ~best_prior:p.best_prior
      end
      else begin
        p.no <- p.no + r.count;
        (match r.committed with
        | Some committed -> st.max_tag <- max st.max_tag committed.tag
        | None -> ());
        if p.no >= fail_threshold st then proposition_failed st
      end
  | Proposing p when compare_pno p.pno r.pno = 0 && r.round = Propose_round ->
      st.progress_silence <- 0;
      refill st;
      if r.positive then begin
        note_counted st ~pno:r.pno ~round:r.round ~count:r.count;
        p.yes <- p.yes + r.count;
        if p.yes >= majority st then decide st p.value
      end
      else begin
        p.no <- p.no + r.count;
        (match r.committed with
        | Some committed -> st.max_tag <- max st.max_tag committed.tag
        | None -> ());
        if p.no >= fail_threshold st then proposition_failed st
      end
  | Idle | Preparing _ | Proposing _ -> ()

(* Acceptor logic. Returns the response this acceptor generates, already
   noted in the instrumentation. *)
and acceptor_respond st (message : proposer_msg) =
  let pno = pno_of_proposer_msg message in
  let ok =
    match st.promised with None -> true | Some p -> pno_le p pno
  in
  let round, positive, prior, committed =
    match message with
    | Prepare _ ->
        if ok then begin
          st.promised <- Some pno;
          (Prepare_round, true, st.accepted, None)
        end
        else (Prepare_round, false, None, st.promised)
    | Propose { value; _ } ->
        if ok then begin
          st.promised <- Some pno;
          st.accepted <- Some { pno; value };
          (Propose_round, true, None, None)
        end
        else (Propose_round, false, None, st.promised)
  in
  st.responded <- Some (pno, round);
  (match st.cfg.instrument with
  | Some instrument when positive ->
      Instrument.note_generated instrument ~pno ~round
  | Some _ | None -> ());
  (round, positive, prior, committed)

(* The proposer's own acceptor answers directly, skipping the queue. *)
and self_respond st (message : proposer_msg) =
  let pno = pno_of_proposer_msg message in
  let round, positive, prior, committed = acceptor_respond st message in
  count_response st
    {
      dest = st.me;
      target = st.me;
      pno;
      round;
      positive;
      count = 1;
      best_prior = prior;
      committed;
    }

(* ------------------------------------------------------------------ *)
(* Component handlers                                                   *)
(* ------------------------------------------------------------------ *)

(* ONLEADERCHANGE, factored so monotone adoption (Alg 2) and the hardened
   demotion path (suspected leader) share it: the proposer stands down, both
   PAXOS queues keep only current-leader content, and the update counts as a
   change event (Alg 3). *)
let set_omega st id =
  st.omega <- id;
  st.leader_q <- Some id;
  st.phase <- Idle;
  (match st.proposal_q with
  | Some p when (pno_of_proposer_msg p).proposer <> st.omega ->
      st.proposal_q <- None
  | Some _ | None -> ());
  prune_response_q st;
  Fd.watch st.fd ~peer:id;
  refill st;
  local_change st

(* Best unsuspected candidate among the ids we have heard from (we always
   know — and never suspect — ourselves). *)
let candidate_omega st =
  Fd.candidate st.fd ~base:st.me ~eligible:(fun _ -> true)

let recompute_omega st =
  let next = candidate_omega st in
  if next <> st.omega then set_omega st next

let on_leader st ~id ~hb =
  (if st.cfg.retransmit && id <> st.me then
     match Fd.observe st.fd ~peer:id ~hb with
     | Stale -> ()
     | verdict ->
         (* Relay the fresh heartbeat so it floods network-wide. *)
         if id = st.omega then st.leader_q <- Some id;
         (match verdict with
         | Fresh_cleared ->
             (* Heartbeats advanced past the suspicion point: the candidate
                was alive after all (e.g. a loss window ate its traffic). *)
             refill st;
             recompute_omega st
         | Fresh | Stale -> ()));
  if id > st.omega && not (suspected st id) then set_omega st id

let on_change st ~counter ~origin =
  st.lamport <- max st.lamport counter;
  let stamp = (counter, origin) in
  if stamp_compare stamp st.last_change > 0 then begin
    st.last_change <- stamp;
    refill st;
    change_updateq st stamp
  end

let on_search st ~root ~hops ~sender =
  let current =
    Option.value ~default:max_int (Hashtbl.find_opt st.dist root)
  in
  if hops < current then begin
    Hashtbl.replace st.dist root hops;
    Hashtbl.replace st.parent root sender;
    refill st;
    (* UpdateQ (Alg 4): FIFO, one queued search per root, smallest hop
       count; the leader's entry is pulled to the front at dequeue time. *)
    st.tree_q <-
      List.filter (fun (r, _) -> r <> root) st.tree_q @ [ (root, hops + 1) ];
    (* A change event (Alg 3) — but only for the distance to the CURRENT
       leader. This is the reading Lemma 4.5's GST argument needs: changes
       stop once the leader election and the leader's tree stabilize
       (O(D*F_ack)), even though background trees for other roots keep
       refining for Theta(n*F_ack). Firing on every root's dist update
       would keep regenerating proposals over that whole window and inflate
       decision latency from O(D*F_ack) to Theta(n*F_ack). *)
    if root = st.omega then local_change st
  end

let proposition_gt a b =
  match b with None -> true | Some b -> compare_proposition a b > 0

let on_proposal st (message : proposer_msg) =
  let pno = pno_of_proposer_msg message in
  st.max_tag <- max st.max_tag pno.tag;
  if pno.proposer = st.omega && pno.proposer <> st.me then begin
    let round =
      match message with Prepare _ -> Prepare_round | Propose _ -> Propose_round
    in
    (* Flooding with the proposer-queue invariant: forward the first copy of
       each proposition, keeping only the largest from the current leader. *)
    if proposition_gt (pno, round) st.best_proposal_seen then begin
      st.best_proposal_seen <- Some (pno, round);
      st.proposal_q <- Some message;
      refill st
    end;
    (* Acceptor: respond once per proposition, routed up the leader's tree. *)
    if proposition_gt (pno, round) st.responded then begin
      let round, positive, prior, committed = acceptor_respond st message in
      enqueue_response st ~target:pno.proposer ~pno ~round ~positive ~count:1
        ~prior ~committed
    end
  end

let on_response st (r : response) =
  if r.dest = st.me then
    if r.target = st.me then count_response st r
    else if r.target = st.omega then
      (* Relay hop: re-enqueue toward our own parent, aggregating. *)
      enqueue_response st ~target:r.target ~pno:r.pno ~round:r.round
        ~positive:r.positive ~count:r.count ~prior:r.best_prior
        ~committed:r.committed

let on_decision st value =
  if st.decision = None then begin
    st.decision <- Some value;
    st.decide_q <- Some value;
    st.phase <- Idle
  end

(* ------------------------------------------------------------------ *)
(* Hardened ack tick (retransmit mode)                                  *)
(* ------------------------------------------------------------------ *)

(* Runs on every ack while undecided and patient. The ack is this model's
   only clock, so everything time-based lives here, measured in own acks:
   the leader advances its heartbeat; followers count silence and suspect a
   leader whose heartbeat stalls; routes to the leader are re-advertised on
   an exponential backoff; and a leader whose proposition stopped making
   counted progress escalates with a FRESH proposal number — acceptors'
   responded-guard makes them answer a new number exactly once, so lost
   responses are replaced without ever double-counting aggregated counts
   from the old number. Setting [leader_q] unconditionally guarantees the
   next broadcast, i.e. the clock keeps ticking. *)
let hardened_tick st =
  if st.cfg.retransmit && st.decision = None && st.patience_left > 0 then begin
    st.patience_left <- st.patience_left - 1;
    (if st.omega = st.me then ignore (Fd.beat st.fd)
     else
       match Fd.tick st.fd ~peer:st.omega with
       | Suspect -> recompute_omega st
       | Ok -> ());
    st.leader_q <- Some st.omega;
    st.idle_acks <- st.idle_acks + 1;
    if st.idle_acks >= st.next_refresh then begin
      st.idle_acks <- 0;
      st.next_refresh <- min (2 * st.next_refresh) refresh_cap;
      (* Re-advertise our route to the leader (UpdateQ form, Alg 4) so
         nodes that lost the search wave learn parent pointers and stuck
         unroutable responses get unstuck. *)
      match Hashtbl.find_opt st.dist st.omega with
      | Some d ->
          st.tree_q <-
            List.filter (fun (r, _) -> r <> st.omega) st.tree_q
            @ [ (st.omega, d + 1) ]
      | None -> ()
    end;
    if st.omega = st.me && st.retries_left > 0 then begin
      st.progress_silence <- st.progress_silence + 1;
      if st.progress_silence >= st.next_retry then begin
        st.progress_silence <- 0;
        st.next_retry <- min (2 * st.next_retry) st.retry_cap;
        st.retries_left <- st.retries_left - 1;
        generate_proposal st
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Algorithm wiring                                                     *)
(* ------------------------------------------------------------------ *)

let init cfg (ctx : Amac.Algorithm.ctx) =
  let n =
    match ctx.n with
    | Some n -> n
    | None -> invalid_arg "Wpaxos: requires knowledge of n (see Thm 3.9)"
  in
  let me = Amac.Node_id.unique_exn ctx.id in
  let st =
    {
      me;
      n;
      input = ctx.input;
      cfg;
      omega = me;
      leader_q = Some me;
      lamport = 0;
      last_change = (-1, -1);
      change_q = None;
      dist = Hashtbl.create 16;
      parent = Hashtbl.create 16;
      tree_q = [ (me, 1) ];
      max_tag = 0;
      phase = Idle;
      attempts_left = 1;
      proposal_q = None;
      best_proposal_seen = None;
      promised = None;
      accepted = None;
      responded = None;
      response_q = [];
      decision = None;
      announced = false;
      decide_q = None;
      sending = false;
      fd =
        Fd.create
          ~patience:(Option.value cfg.patience ~default:((4 * n) + 16))
          ~backoff:cfg.backoff ~me ();
      idle_acks = 0;
      next_refresh = refresh_start;
      progress_silence = 0;
      next_retry = (2 * n) + 8;
      retry_start = (2 * n) + 8;
      retry_cap = 16 * ((2 * n) + 8);
      retries_left = max_retries;
      patience_left = patience_max;
    }
  in
  Hashtbl.replace st.dist me 0;
  Hashtbl.replace st.parent me me;
  (* Initialisation counts as a change (omega and dist were just set): every
     node starts as its own leader and issues an initial proposal. *)
  local_change st;
  (st, finish st)

let on_receive _ctx st (components : msg) =
  (* Leader updates first so later components in the same broadcast are
     judged against the freshest omega. *)
  let rank = function
    | Leader _ -> 0
    | Change _ -> 1
    | Search _ -> 2
    | Proposal _ -> 3
    | Response _ -> 4
    | Decision _ -> 5
  in
  let ordered =
    List.sort (fun a b -> Int.compare (rank a) (rank b)) components
  in
  List.iter
    (fun component ->
      match component with
      | Leader { id; hb } -> on_leader st ~id ~hb
      | Change { counter; origin } -> on_change st ~counter ~origin
      | Search { root; hops; sender } -> on_search st ~root ~hops ~sender
      | Proposal p -> on_proposal st p
      | Response r -> on_response st r
      | Decision v -> on_decision st v)
    ordered;
  (* Hardened decision refresh: an undecided hardened node heartbeats on
     every ack, so its broadcasts carry a Leader component. A decided node
     that hears one answers with its decision — this is how an amnesiac
     recovered node (or one a loss window starved) re-learns the outcome.
     Bounded: triggered only by heartbeats, which are patience-bounded. *)
  (if st.cfg.retransmit then
     match st.decision with
     | Some v
       when List.exists (function Leader _ -> true | _ -> false) components
            && not
                 (List.exists
                    (function Decision _ -> true | _ -> false)
                    components) ->
         st.decide_q <- Some v
     | Some _ | None -> ());
  finish st

let on_ack _ctx st =
  st.sending <- false;
  hardened_tick st;
  finish st

let component_ids = function
  | Leader _ -> 1
  | Change _ -> 1
  | Search _ -> 2
  | Proposal p -> proposer_msg_ids p
  | Response r -> response_ids r
  | Decision _ -> 0

let msg_ids components =
  List.fold_left (fun acc c -> acc + component_ids c) 0 components

let pp_component = function
  | Leader { id; hb } -> Printf.sprintf "leader(%d,hb=%d)" id hb
  | Change { counter; origin } -> Printf.sprintf "change(%d@%d)" counter origin
  | Search { root; hops; sender } ->
      Printf.sprintf "search(root=%d,h=%d,from=%d)" root hops sender
  | Proposal p -> pp_proposer_msg p
  | Response r -> pp_response r
  | Decision v -> Printf.sprintf "decide(%d)" v

let pp_msg components = String.concat "+" (List.map pp_component components)

(* Verification fast path (Algorithm.hooks). The state is wide but almost
   entirely ints and small variants; the four service hashtables are folded
   in sorted key order so insertion history cannot split logically equal
   states. [cfg] is per-algorithm-instance and constant across a checking
   run, so it is skipped (and shared by [clone], including the instrument —
   instrumentation is not model state). *)
module F = Amac.Fingerprint

let fp_pno { tag; proposer } acc = acc |> F.int tag |> F.int proposer

let fp_prior { pno; value } acc = acc |> fp_pno pno |> F.int value

let fp_round r acc =
  F.int (match r with Prepare_round -> 0 | Propose_round -> 1) acc

let fp_proposer_msg m acc =
  match m with
  | Prepare pno -> acc |> F.int 1 |> fp_pno pno
  | Propose { pno; value } -> acc |> F.int 2 |> fp_pno pno |> F.int value

let fp_response (r : response) acc =
  acc |> F.int r.dest |> F.int r.target |> fp_pno r.pno |> fp_round r.round
  |> F.bool r.positive |> F.int r.count
  |> F.option fp_prior r.best_prior
  |> F.option fp_pno r.committed

let fp_component c acc =
  match c with
  | Leader { id; hb } -> acc |> F.int 1 |> F.int id |> F.int hb
  | Change { counter; origin } -> acc |> F.int 2 |> F.int counter |> F.int origin
  | Search { root; hops; sender } ->
      acc |> F.int 3 |> F.int root |> F.int hops |> F.int sender
  | Proposal p -> acc |> F.int 4 |> fp_proposer_msg p
  | Response r -> acc |> F.int 5 |> fp_response r
  | Decision v -> acc |> F.int 6 |> F.int v

let fp_msg (components : msg) acc = F.list fp_component components acc

let fp_int_tbl tbl acc =
  let entries = Hashtbl.fold (fun k v l -> (k, v) :: l) tbl [] in
  let entries = List.sort compare entries in
  F.list (fun (k, v) acc -> acc |> F.int k |> F.int v) entries acc

let fp_phase phase acc =
  match phase with
  | Idle -> F.int 0 acc
  | Preparing p ->
      acc |> F.int 1 |> fp_pno p.pno |> F.int p.yes |> F.int p.no
      |> F.option fp_prior p.best_prior
  | Proposing p ->
      acc |> F.int 2 |> fp_pno p.pno |> F.int p.value |> F.int p.yes
      |> F.int p.no

let fp_pending (e : pending_response) acc =
  acc |> F.int e.q_target |> fp_pno e.q_pno |> fp_round e.q_round
  |> F.bool e.q_positive |> F.int e.q_count
  |> F.option fp_prior e.q_prior
  |> F.option fp_pno e.q_committed

let fp_pair (a, b) acc = acc |> F.int a |> F.int b

let fingerprint st acc =
  acc |> F.int st.me |> F.int st.n |> F.int st.input |> F.int st.omega
  |> F.option F.int st.leader_q
  |> F.int st.lamport |> fp_pair st.last_change
  |> F.option fp_pair st.change_q
  |> fp_int_tbl st.dist |> fp_int_tbl st.parent
  |> F.list fp_pair st.tree_q
  |> F.int st.max_tag |> fp_phase st.phase |> F.int st.attempts_left
  |> F.option fp_proposer_msg st.proposal_q
  |> F.option
       (fun (pno, round) acc -> acc |> fp_pno pno |> fp_round round)
       st.best_proposal_seen
  |> F.option fp_pno st.promised
  |> F.option fp_prior st.accepted
  |> F.option
       (fun (pno, round) acc -> acc |> fp_pno pno |> fp_round round)
       st.responded
  |> F.list fp_pending st.response_q
  |> F.option F.int st.decision
  |> F.bool st.announced
  |> F.option F.int st.decide_q
  |> F.bool st.sending
  |> Fd.fingerprint st.fd
  |> F.int st.idle_acks |> F.int st.next_refresh |> F.int st.progress_silence
  |> F.int st.next_retry |> F.int st.retries_left |> F.int st.patience_left

let clone st =
  {
    st with
    dist = Hashtbl.copy st.dist;
    parent = Hashtbl.copy st.parent;
    fd = Fd.clone st.fd;
    phase =
      (match st.phase with
      | Idle -> Idle
      | Preparing p ->
          Preparing
            { pno = p.pno; yes = p.yes; no = p.no; best_prior = p.best_prior }
      | Proposing p ->
          Proposing { pno = p.pno; value = p.value; yes = p.yes; no = p.no });
    response_q =
      List.map (fun e -> { e with q_count = e.q_count }) st.response_q;
  }

let hooks = Some { Amac.Algorithm.fingerprint; fingerprint_msg = fp_msg; clone }

let make ?(leader_priority = true) ?(aggregate = true) ?quorum ?instrument
    ?(retransmit = true) ?patience ?(backoff = 1) () =
  (match quorum with
  | Some q when q < 1 -> invalid_arg "Wpaxos.make: quorum must be >= 1"
  | Some _ | None -> ());
  (match patience with
  | Some p when p < 1 -> invalid_arg "Wpaxos.make: patience must be >= 1"
  | Some _ | None -> ());
  if backoff < 1 then invalid_arg "Wpaxos.make: backoff must be >= 1";
  let cfg =
    { leader_priority; aggregate; quorum; instrument; retransmit; patience;
      backoff }
  in
  {
    Amac.Algorithm.name =
      (if leader_priority && aggregate && retransmit then "wpaxos"
       else
         Printf.sprintf "wpaxos[prio=%b,agg=%b,rtx=%b]" leader_priority
           aggregate retransmit);
    init = init cfg;
    on_receive;
    on_ack;
    msg_ids;
    hooks;
  }
