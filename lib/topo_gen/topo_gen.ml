type spec =
  | Grid of { width : int; height : int }
  | Rgg of { n : int; radius : float }
  | Cluster of { clusters : int; size : int; extra_bridges : int }

let name = function
  | Grid { width; height } -> Printf.sprintf "grid:%dx%d" width height
  | Rgg { n; _ } -> Printf.sprintf "rgg:%d" n
  | Cluster { clusters; size; extra_bridges } ->
      Printf.sprintf "cluster:%dx%d+%d" clusters size extra_bridges

let size = function
  | Grid { width; height } -> width * height
  | Rgg { n; _ } -> n
  | Cluster { clusters; size; _ } -> clusters * size

let connectivity_radius ~n =
  if n < 2 then invalid_arg "Topo_gen.connectivity_radius: need n >= 2";
  sqrt (3.0 *. log (float_of_int n) /. float_of_int n)

let validate = function
  | Grid { width; height } ->
      if width < 1 || height < 1 || width * height < 2 then
        invalid_arg "Topo_gen: grid needs width*height >= 2"
  | Rgg { n; radius } ->
      if n < 2 then invalid_arg "Topo_gen: rgg needs n >= 2";
      if radius <= 0.0 then invalid_arg "Topo_gen: rgg needs radius > 0"
  | Cluster { clusters; size; extra_bridges } ->
      if clusters < 1 then invalid_arg "Topo_gen: need clusters >= 1";
      if size < 2 then invalid_arg "Topo_gen: need cluster size >= 2";
      if extra_bridges < 0 then invalid_arg "Topo_gen: negative extra_bridges"

let rgg_points rng n =
  Array.init n (fun _ ->
      let x = Amac.Rng.float rng 1.0 in
      let y = Amac.Rng.float rng 1.0 in
      (x, y))

let dist2 (x1, y1) (x2, y2) =
  let dx = x1 -. x2 and dy = y1 -. y2 in
  (dx *. dx) +. (dy *. dy)

(* Connect every pair within [radius] using cell bucketing: points land in
   a grid of radius-sized cells, so only the 3x3 cell neighborhood of each
   point is scanned — O(n * local density) instead of the naive O(n^2). *)
let rgg_edges points radius =
  let n = Array.length points in
  let r2 = radius *. radius in
  let cells = max 1 (min n (int_of_float (1.0 /. radius))) in
  let cell_of (x, y) =
    let clamp c = max 0 (min (cells - 1) c) in
    ( clamp (int_of_float (x *. float_of_int cells)),
      clamp (int_of_float (y *. float_of_int cells)) )
  in
  let bucket = Array.make (cells * cells) [] in
  (* Iterate downward so each bucket list ends up in ascending node order. *)
  for u = n - 1 downto 0 do
    let cx, cy = cell_of points.(u) in
    let i = (cy * cells) + cx in
    bucket.(i) <- u :: bucket.(i)
  done;
  let edges = ref [] in
  for u = 0 to n - 1 do
    let cx, cy = cell_of points.(u) in
    for dy = -1 to 1 do
      for dx = -1 to 1 do
        let bx = cx + dx and by = cy + dy in
        if bx >= 0 && bx < cells && by >= 0 && by < cells then
          List.iter
            (fun v ->
              if v > u && dist2 points.(u) points.(v) <= r2 then
                edges := (u, v) :: !edges)
            bucket.((by * cells) + bx)
      done
    done
  done;
  !edges

(* Deterministic connectivity patch: grow the component of node 0 by
   repeatedly bridging it to the nearest outside point (ties broken by the
   lower (u, v) pair), so a sub-threshold draw still yields a connected,
   geometrically plausible graph. *)
let patch_components points edges =
  let n = Array.length points in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union u v =
    let ru = find u and rv = find v in
    if ru <> rv then parent.(ru) <- rv
  in
  List.iter (fun (u, v) -> union u v) edges;
  let patched = ref [] in
  let continue = ref true in
  while !continue do
    let root0 = find 0 in
    let best = ref None in
    for u = 0 to n - 1 do
      if find u = root0 then
        for v = 0 to n - 1 do
          if find v <> root0 then begin
            let d = dist2 points.(u) points.(v) in
            match !best with
            | Some (bd, _, _) when bd <= d -> ()
            | _ -> best := Some (d, u, v)
          end
        done
    done;
    match !best with
    | None -> continue := false
    | Some (_, u, v) ->
        patched := (min u v, max u v) :: !patched;
        union u v
  done;
  edges @ List.rev !patched

let generate ~seed spec =
  validate spec;
  match spec with
  | Grid { width; height } -> Amac.Topology.grid ~width ~height
  | Rgg { n; radius } ->
      let rng = Amac.Rng.create seed in
      let points = rgg_points rng n in
      let edges = patch_components points (rgg_edges points radius) in
      Amac.Topology.of_edges ~n edges
  | Cluster { clusters; size; extra_bridges } ->
      let rng = Amac.Rng.create seed in
      let n = clusters * size in
      let present = Hashtbl.create (4 * n) in
      let edges = ref [] in
      let add u v =
        let key = (min u v, max u v) in
        if u <> v && not (Hashtbl.mem present key) then begin
          Hashtbl.add present key ();
          edges := key :: !edges;
          true
        end
        else false
      in
      for c = 0 to clusters - 1 do
        let base = c * size in
        for u = base to base + size - 1 do
          for v = u + 1 to base + size - 1 do
            ignore (add u v)
          done
        done
      done;
      (* Bridge the clusters in a ring through random gateway nodes. *)
      if clusters > 1 then
        for c = 0 to clusters - 1 do
          let u = (c * size) + Amac.Rng.int rng size in
          let v = ((c + 1) mod clusters * size) + Amac.Rng.int rng size in
          ignore (add u v)
        done;
      let added = ref 0 in
      let attempts = ref 0 in
      let max_attempts = 50 * (extra_bridges + 1) in
      while !added < extra_bridges && !attempts < max_attempts do
        incr attempts;
        if clusters > 1 then begin
          let cu = Amac.Rng.int rng clusters in
          let cv = Amac.Rng.int rng clusters in
          if cu <> cv then begin
            let u = (cu * size) + Amac.Rng.int rng size in
            let v = (cv * size) + Amac.Rng.int rng size in
            if add u v then incr added
          end
        end
        else added := extra_bridges (* single clique: nothing to bridge *)
      done;
      Amac.Topology.of_edges ~n !edges

let positions ~seed spec =
  validate spec;
  match spec with
  | Rgg { n; _ } ->
      let rng = Amac.Rng.create seed in
      Some (rgg_points rng n)
  | Grid _ | Cluster _ -> None

(* ------------------------------------------------------------------ *)
(* Churn and mobility schedules                                         *)
(* ------------------------------------------------------------------ *)

let validate_schedule ~what ~events ~start ~gap =
  if events < 0 then invalid_arg (Printf.sprintf "Topo_gen.%s: events < 0" what);
  if start < 0 then invalid_arg (Printf.sprintf "Topo_gen.%s: start < 0" what);
  if gap < 1 then invalid_arg (Printf.sprintf "Topo_gen.%s: gap < 1" what)

(* Pick an edge whose removal keeps the graph connected; [None] when the
   sampled candidates are all bridges (e.g. on a tree). *)
let removable_edge rng work =
  let edges = Array.of_list (Amac.Topology.edges work) in
  let m = Array.length edges in
  if m = 0 then None
  else begin
    let found = ref None in
    let attempts = ref 0 in
    while !found = None && !attempts < 20 do
      incr attempts;
      let u, v = edges.(Amac.Rng.int rng m) in
      Amac.Topology.remove_edge work u v;
      if Amac.Topology.is_connected work then found := Some (u, v)
      else Amac.Topology.add_edge work u v
    done;
    !found
  end

let absent_pair rng work =
  let n = Amac.Topology.size work in
  let found = ref None in
  let attempts = ref 0 in
  while !found = None && !attempts < 50 do
    incr attempts;
    let u = Amac.Rng.int rng n in
    let v = Amac.Rng.int rng n in
    if u <> v && not (Amac.Topology.has_edge work u v) then
      found := Some (min u v, max u v)
  done;
  !found

let churn ~seed topology ~events ~start ~gap =
  validate_schedule ~what:"churn" ~events ~start ~gap;
  let rng = Amac.Rng.create seed in
  let work = Amac.Topology.copy topology in
  let out = ref [] in
  for k = 0 to events - 1 do
    let time = start + (k * gap) in
    let removal_first = Amac.Rng.bool rng in
    let try_remove () =
      match removable_edge rng work with
      | Some (u, v) ->
          (* [removable_edge] already removed it from [work]. *)
          out := (time, Amac.Topology.Remove_edge (u, v)) :: !out;
          true
      | None -> false
    in
    let try_add () =
      match absent_pair rng work with
      | Some (u, v) ->
          Amac.Topology.add_edge work u v;
          out := (time, Amac.Topology.Add_edge (u, v)) :: !out;
          true
      | None -> false
    in
    if removal_first then (if not (try_remove ()) then ignore (try_add ()))
    else if not (try_add ()) then ignore (try_remove ())
  done;
  List.rev !out

(* A node is movable when the rest of the graph stays connected without
   it: BFS from any other node, ignoring [u], must reach all n-1 others. *)
let movable work u =
  let n = Amac.Topology.size work in
  n >= 3
  &&
  let seen = Array.make n false in
  seen.(u) <- true;
  let source = if u = 0 then 1 else 0 in
  let queue = Queue.create () in
  seen.(source) <- true;
  Queue.add source queue;
  let visited = ref 1 in
  while not (Queue.is_empty queue) do
    let w = Queue.pop queue in
    List.iter
      (fun x ->
        if not seen.(x) then begin
          seen.(x) <- true;
          incr visited;
          Queue.add x queue
        end)
      (Amac.Topology.neighbors work w)
  done;
  !visited = n - 1

let mobility ~seed topology ~moves ~start ~gap =
  validate_schedule ~what:"mobility" ~events:moves ~start ~gap;
  let rng = Amac.Rng.create seed in
  let work = Amac.Topology.copy topology in
  let n = Amac.Topology.size work in
  let out = ref [] in
  for k = 0 to moves - 1 do
    let time = start + (k * gap) in
    let u = ref None in
    let attempts = ref 0 in
    while !u = None && !attempts < 20 do
      incr attempts;
      let candidate = Amac.Rng.int rng n in
      if movable work candidate then u := Some candidate
    done;
    match !u with
    | None -> ()
    | Some u ->
        let old = Amac.Topology.neighbors work u in
        List.iter
          (fun w ->
            Amac.Topology.remove_edge work u w;
            out := (time, Amac.Topology.Remove_edge (u, w)) :: !out)
          old;
        let anchor = ref (Amac.Rng.int rng n) in
        while !anchor = u do
          anchor := Amac.Rng.int rng n
        done;
        let anchor = !anchor in
        let attach w =
          if w <> u && not (Amac.Topology.has_edge work u w) then begin
            Amac.Topology.add_edge work u w;
            out := (time, Amac.Topology.Add_edge (u, w)) :: !out
          end
        in
        attach anchor;
        let near =
          Array.of_list
            (List.filter (fun w -> w <> u) (Amac.Topology.neighbors work anchor))
        in
        Amac.Rng.shuffle rng near;
        Array.iteri (fun i w -> if i < 2 then attach w) near
  done;
  List.rev !out
