(** Seeded generators for large multi-hop topologies, plus churn and
    mobility expressed as {!Amac.Topology.delta} schedules.

    Every generator is a pure function of its spec and an integer seed:
    the same (spec, seed) pair produces a byte-identical edge set on every
    run and platform, so 1000-node experiments stay replayable from one
    integer. Generated graphs are always connected — a disconnected draw
    (possible for a sub-threshold RGG radius) is patched deterministically
    by bridging components along their closest point pairs.

    The random geometric graph follows the SINR-motivated setting of
    Halldórsson–Holzer–Lynch (arXiv:1505.04514): nodes are points in the
    unit square, and two nodes are neighbors iff they lie within the
    connection radius. {!connectivity_radius} is a radius comfortably above
    the [sqrt (ln n / n)] connectivity threshold. *)

type spec =
  | Grid of { width : int; height : int }
      (** the 2-D mesh (delegates to {!Amac.Topology.grid}) *)
  | Rgg of { n : int; radius : float }
      (** [n] uniform points in the unit square, edges within [radius] *)
  | Cluster of { clusters : int; size : int; extra_bridges : int }
      (** [clusters] cliques of [size] nodes bridged in a ring, plus
          [extra_bridges] distinct random inter-cluster chords *)

(** Stable short name ("grid:20x20", "rgg:1000", "cluster:8x12+4") used as
    a row key in benches and the test matrix. *)
val name : spec -> string

(** Node count of the generated graph. *)
val size : spec -> int

(** [connectivity_radius ~n] = [sqrt (3 ln n / n)] — above the RGG
    connectivity threshold, so patching is rare and local. *)
val connectivity_radius : n:int -> float

(** [generate ~seed spec] — deterministic in [(spec, seed)]; always
    connected. @raise Invalid_argument on degenerate dimensions
    ([n < 2], [width*height < 2], [clusters < 1], [size < 2],
    non-positive radius). *)
val generate : seed:int -> spec -> Amac.Topology.t

(** [positions ~seed spec] — the point set an [Rgg] spec embeds ([None]
    for the combinatorial specs). Exposed so tests can check the radius
    semantics against the generated edge set. *)
val positions : seed:int -> spec -> (float * float) array option

(** {1 Churn and mobility}

    Both return a time-stamped delta schedule (sorted by time) that keeps
    the graph {e connected after every delta} — apply them in order to a
    {!Amac.Topology.copy} of the generated graph, or hand them to the
    engine's [topo_deltas]. Deterministic in [(topology, seed)]. *)

(** [churn ~seed t ~events ~start ~gap] alternates edge removals and
    insertions: each removal picks a random non-bridge edge (connectivity
    is re-checked), each insertion a random absent pair. Events land at
    times [start, start+gap, ...]. Fewer than [events] deltas are returned
    when no legal candidate is found (e.g. a tree has no removable edge).
    @raise Invalid_argument if [events < 0], [start < 0] or [gap < 1]. *)
val churn :
  seed:int ->
  Amac.Topology.t ->
  events:int ->
  start:int ->
  gap:int ->
  (int * Amac.Topology.delta) list

(** [mobility ~seed t ~moves ~start ~gap] models node movement: each move
    detaches one node from all its neighbors and re-attaches it near a
    randomly chosen anchor node (to the anchor and up to two of the
    anchor's neighbors), as a burst of deltas sharing one timestamp. Only
    nodes whose removal leaves the rest connected are moved, so the graph
    is connected after each burst. Fewer than [moves] bursts are returned
    when no movable node is found.
    @raise Invalid_argument if [moves < 0], [start < 0] or [gap < 1]. *)
val mobility :
  seed:int ->
  Amac.Topology.t ->
  moves:int ->
  start:int ->
  gap:int ->
  (int * Amac.Topology.delta) list
